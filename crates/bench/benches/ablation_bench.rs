//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. **Incremental vs. restarting SAT in the lazy DPLL(T) loop** — with
//!    `incremental_sat` the CDCL search continues across theory rounds; the
//!    ablation restarts the propositional search from scratch after every
//!    theory conflict clause (the textbook offline-lazy scheme).
//! 2. **Per-assert VC splitting vs. one monolithic VC** — the pipeline mirrors
//!    Boogie's split-on-every-assert discipline; the ablation conjoins every
//!    verification condition of a method into a single validity query.
//!
//! Both ablations run on small, fast benchmark methods so that Criterion can
//! afford several samples.

use criterion::{criterion_group, criterion_main, Criterion};
use ids_core::fwyb::expand_program;
use ids_ivl::parse_program;
use ids_smt::{SatResult, Solver, SolverConfig, TermManager};
use ids_structures::lists;
use ids_vcgen::{Encoding, VcGen};

/// Expands one benchmark method and returns its verification conditions in a
/// fresh term manager.
fn vcs_of(method: &str) -> (TermManager, Vec<ids_smt::TermId>) {
    let ids = lists::singly_linked_list();
    let methods = parse_program(lists::SINGLY_LINKED_LIST_METHODS).expect("parse");
    let expanded = expand_program(&ids, &methods).expect("expand");
    let mut tm = TermManager::new();
    let vcgen = VcGen::new(&expanded, Encoding::Decidable);
    let vcs = vcgen.vcs_for(&mut tm, method).expect("vcs");
    let formulas = vcs.iter().map(|vc| vc.formula).collect();
    (tm, formulas)
}

fn check_all_valid(tm: &mut TermManager, formulas: &[ids_smt::TermId], config: SolverConfig) {
    for &f in formulas {
        let mut solver = Solver::with_config(config);
        assert_eq!(
            solver.check_valid(tm, f),
            SatResult::Sat,
            "VC must be valid"
        );
    }
}

fn incremental_vs_restarting_sat(c: &mut Criterion) {
    let (tm, formulas) = vcs_of("set_key");
    let mut g = c.benchmark_group("ablation/sat-loop");
    g.sample_size(10);
    for (label, incremental) in [("incremental", true), ("restarting", false)] {
        let config = SolverConfig {
            incremental_sat: incremental,
            ..SolverConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut tm = tm.clone();
                check_all_valid(&mut tm, &formulas, config);
            })
        });
    }
    g.finish();
}

fn split_vs_monolithic_vcs(c: &mut Criterion) {
    let (tm, formulas) = vcs_of("set_key");
    let mut g = c.benchmark_group("ablation/vc-splitting");
    g.sample_size(10);
    g.bench_function("per-assert-split", |b| {
        b.iter(|| {
            let mut tm = tm.clone();
            check_all_valid(&mut tm, &formulas, SolverConfig::default());
        })
    });
    g.bench_function("monolithic", |b| {
        b.iter(|| {
            let mut tm = tm.clone();
            let conj = tm.and(formulas.clone());
            let mut solver = Solver::new();
            assert_eq!(solver.check_valid(&mut tm, conj), SatResult::Sat);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    incremental_vs_restarting_sat,
    split_vs_monolithic_vcs
);
criterion_main!(benches);
