//! Criterion bench reproducing the RQ3 comparison (the Boogie-vs-Dafny scatter
//! plot of §5.3): the same FWYB-annotated method verified once with decidable
//! (pointwise map update) frame conditions and once with quantified
//! (Dafny-style) frame axioms.

use criterion::{criterion_group, criterion_main, Criterion};
use ids_core::pipeline::{load_methods, verify_method_in, PipelineConfig};
use ids_structures::{lists, trees};
use ids_vcgen::Encoding;

fn encodings(c: &mut Criterion) {
    let cases = [
        (
            "sll/set_key",
            lists::singly_linked_list(),
            lists::SINGLY_LINKED_LIST_METHODS,
            "set_key",
        ),
        (
            "bst/find_min",
            trees::bst(),
            trees::BST_METHODS,
            "bst_find_min",
        ),
    ];
    for (label, ids, src, method) in cases {
        let merged = load_methods(&ids, src).expect("methods load");
        let mut g = c.benchmark_group(format!("rq3/{}", label));
        g.sample_size(10);
        for (enc_label, encoding) in [
            ("decidable", Encoding::Decidable),
            ("quantified", Encoding::Quantified),
        ] {
            let config = PipelineConfig {
                encoding,
                ..PipelineConfig::default()
            };
            g.bench_function(enc_label, |b| {
                b.iter(|| verify_method_in(&ids, &merged, method, config).expect("pipeline"))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, encodings);
criterion_main!(benches);
