//! Golden roundtrip tests for the IVL front end: for a corpus of procedures,
//! parse → pretty-print (`printer.rs`) → reparse must reproduce the same AST,
//! and pretty-printing must be a fixpoint. Plus typechecker rejection cases:
//! ill-scoped or ill-typed programs must be refused with a useful message.

use ids_ivl::{check_program, parse_program, program_to_string};

/// Asserts that `src` parses, and that parse → print → reparse is the
/// identity on ASTs (with printing a fixpoint on the printed text).
fn assert_roundtrip(name: &str, src: &str) {
    let first = parse_program(src).unwrap_or_else(|e| panic!("{}: corpus must parse: {}", name, e));
    let printed = program_to_string(&first);
    let second = parse_program(&printed)
        .unwrap_or_else(|e| panic!("{}: printed output must reparse: {}\n{}", name, e, printed));
    assert_eq!(first, second, "{}: AST changed across print/reparse", name);
    let printed_again = program_to_string(&second);
    assert_eq!(
        printed, printed_again,
        "{}: printing is not a fixpoint",
        name
    );
}

#[test]
fn roundtrip_fields_and_simple_procedure() {
    assert_roundtrip(
        "simple",
        r#"
        field next: Loc;
        field key: Int;

        procedure skip_one(x: Loc) returns (y: Loc)
          requires x != nil;
        {
          y := x.next;
        }
        "#,
    );
}

#[test]
fn roundtrip_contracts_and_ghost_fields() {
    assert_roundtrip(
        "contracts",
        r#"
        field next: Loc;
        field ghost length: Int;

        procedure measure(x: Loc) returns (n: Int)
          requires x != nil;
          ensures n >= 1;
          ensures n == old(x.length);
          modifies {x};
        {
          n := x.length;
        }
        "#,
    );
}

#[test]
fn roundtrip_control_flow() {
    assert_roundtrip(
        "control-flow",
        r#"
        field next: Loc;
        field key: Int;

        procedure find(x: Loc, k: Int) returns (r: Loc)
        {
          r := x;
          while (r != nil && r.key != k)
            invariant true;
          {
            r := r.next;
          }
          if (r == nil) {
            r := x;
          } else {
            r := r.next;
          }
        }
        "#,
    );
}

#[test]
fn roundtrip_set_expressions() {
    assert_roundtrip(
        "sets",
        r#"
        field ghost keys: Set<Int>;
        field ghost hs: Set<Loc>;

        procedure sets(x: Loc, y: Loc) returns (b: Bool)
          requires x != nil && y != nil;
        {
          b := x.keys == union(y.keys, {3}) && 4 in diff(x.keys, inter(x.keys, y.keys)) && x in x.hs;
        }
        "#,
    );
}

#[test]
fn roundtrip_fwyb_macro_statements() {
    assert_roundtrip(
        "fwyb-macros",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;

        procedure relink(x: Loc, y: Loc)
          requires Br == {} && x != nil && y != nil;
          ensures Br == {};
          modifies {x};
        {
          Mut(x, next, y);
          Mut(y, prev, x);
          AssertLCAndRemove(x);
          AssertLCAndRemove(y);
        }
        "#,
    );
}

#[test]
fn roundtrip_allocation_and_calls() {
    assert_roundtrip(
        "alloc-calls",
        r#"
        field next: Loc;
        field key: Int;

        procedure helper(x: Loc) returns (r: Loc)
        {
          r := x;
        }

        procedure caller(x: Loc) returns (r: Loc)
        {
          var z: Loc;
          NewObj(z);
          Mut(z, next, x);
          call r := helper(z);
          AssertLCAndRemove(z);
        }
        "#,
    );
}

#[test]
fn roundtrip_ghost_variables_and_assumes() {
    assert_roundtrip(
        "ghost-vars",
        r#"
        field ghost length: Int;

        procedure ghostly(x: Loc) returns (n: Int)
        {
          var ghost g: Int;
          g := x.length;
          assume g >= 1;
          n := 0;
          assert n <= g;
        }
        "#,
    );
}

#[test]
fn roundtrip_arithmetic_precedence() {
    // Nested arithmetic / boolean structure survives the printer with the
    // same associativity (the AST comparison catches precedence bugs). The
    // IVL is deliberately linear: no multiplication operator exists.
    assert_roundtrip(
        "precedence",
        r#"
        field key: Int;

        procedure arith(x: Loc, a: Int, b: Int, c: Int) returns (r: Int)
        {
          r := a + c - (a - b) - x.key;
          assert a + b >= c - 1 || r == r && !(a > b);
        }
        "#,
    );
}

#[test]
fn roundtrip_the_shipped_benchmark_sources_style() {
    // A procedure in the exact idiom of the Table-2 method files: contracts
    // over broken sets, old() in ensures, macro statements with broken-set
    // arguments.
    assert_roundtrip(
        "table2-style",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        field ghost keys: Set<Int>;

        procedure insert_front(x: Loc, k: Int) returns (r: Loc)
          requires Br == {} && x != nil && x.prev == nil;
          ensures Br == {} && r != nil && r.prev == nil;
          ensures r.length == old(x.length) + 1;
          ensures r.keys == union({k}, old(x.keys));
          modifies {x};
        {
          InferLCOutsideBr(x);
          var z: Loc;
          NewObj(z);
          Mut(z, key, k);
          Mut(z, next, x);
          Mut(z, length, x.length + 1);
          Mut(z, keys, union({k}, x.keys));
          Mut(x, prev, z);
          AssertLCAndRemove(z);
          AssertLCAndRemove(x);
          r := z;
        }
        "#,
    );
}

// ---------------------------------------------------------------------------
// Typechecker rejection cases
// ---------------------------------------------------------------------------

/// Asserts that the program parses but is rejected by the typechecker with a
/// message containing `needle`.
fn assert_rejected(src: &str, needle: &str) {
    let program = parse_program(src).expect("rejection corpus must parse");
    let err = check_program(&program).expect_err("typechecker must reject");
    let msg = err.to_string();
    assert!(
        msg.contains(needle),
        "error message {:?} does not mention {:?}",
        msg,
        needle
    );
}

#[test]
fn rejects_undeclared_variable() {
    assert_rejected(
        r#"
        procedure bad() returns (n: Int)
        {
          n := phantom;
        }
        "#,
        "phantom",
    );
}

#[test]
fn rejects_unknown_field_access() {
    assert_rejected(
        r#"
        field key: Int;

        procedure bad(x: Loc) returns (n: Int)
        {
          n := x.missing;
        }
        "#,
        "missing",
    );
}

#[test]
fn rejects_type_mismatch_in_assignment() {
    assert_rejected(
        r#"
        field key: Int;

        procedure bad(x: Loc) returns (n: Int)
        {
          n := x != nil;
        }
        "#,
        "Bool",
    );
}

#[test]
fn rejects_arithmetic_on_booleans() {
    assert_rejected(
        r#"
        procedure bad(a: Bool, b: Bool) returns (n: Int)
        {
          n := a + b;
        }
        "#,
        "",
    );
}

#[test]
fn rejects_membership_on_non_set() {
    assert_rejected(
        r#"
        procedure bad(a: Int, b: Int) returns (r: Bool)
        {
          r := a in b;
        }
        "#,
        "set",
    );
}

#[test]
fn rejects_call_arity_mismatch() {
    assert_rejected(
        r#"
        procedure callee(a: Int, b: Int) returns (r: Int)
        {
          r := a + b;
        }

        procedure bad(a: Int) returns (r: Int)
        {
          call r := callee(a);
        }
        "#,
        "argument",
    );
}

#[test]
fn rejects_non_boolean_condition() {
    assert_rejected(
        r#"
        procedure bad(a: Int) returns (r: Int)
        {
          if (a) {
            r := 1;
          } else {
            r := 0;
          }
        }
        "#,
        "",
    );
}

#[test]
fn rejects_non_boolean_contract() {
    assert_rejected(
        r#"
        procedure bad(a: Int) returns (r: Int)
          requires a + 1;
        {
          r := a;
        }
        "#,
        "",
    );
}

#[test]
fn accepts_every_shipped_rejection_counterpart() {
    // Sanity: the well-typed twins of the rejection cases above all pass, so
    // the rejections are about the planted defect, not collateral strictness.
    for src in [
        r#"
        procedure ok() returns (n: Int)
        {
          n := 1;
        }
        "#,
        r#"
        field key: Int;

        procedure ok(x: Loc) returns (n: Int)
        {
          n := x.key;
        }
        "#,
        r#"
        procedure callee(a: Int, b: Int) returns (r: Int)
        {
          r := a + b;
        }

        procedure ok(a: Int) returns (r: Int)
        {
          call r := callee(a, a);
        }
        "#,
    ] {
        let program = parse_program(src).expect("parses");
        check_program(&program).expect("well-typed");
    }
}
