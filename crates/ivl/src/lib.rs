//! `ids-ivl` — a Boogie-like intermediate verification language (IVL).
//!
//! The paper implements intrinsic definitions and the fix-what-you-break
//! (FWYB) methodology on top of Boogie: a small imperative language with
//! contracts, loop invariants, `assert`/`assume`, ghost state and heap fields
//! modelled as maps. This crate provides the equivalent substrate for the
//! reproduction:
//!
//! * [`ast`] — programs, procedures, statements and expressions, including the
//!   FWYB *macro statements* (`Mut`, `NewObj`, `AssertLCAndRemove`,
//!   `InferLCOutsideBr`, …) that `ids-core` expands;
//! * [`lexer`] / [`parser`] — a concrete surface syntax so the benchmark
//!   programs of Table 2 can be written as readable text (embedded with
//!   `include_str!`) rather than hand-built ASTs;
//! * [`typecheck`] — scoping and sort checking, field declarations, ghost
//!   annotations;
//! * [`printer`] — pretty-printing back to surface syntax.
//!
//! # Example
//!
//! ```
//! use ids_ivl::parse_program;
//! let src = r#"
//!     field next: Loc;
//!     field key: Int;
//!
//!     procedure skip_one(x: Loc) returns (y: Loc)
//!       requires x != nil;
//!     {
//!       y := x.next;
//!     }
//! "#;
//! let program = parse_program(src).expect("parses");
//! ids_ivl::typecheck::check_program(&program).expect("well-typed");
//! assert_eq!(program.procedures.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod typecheck;

pub use ast::{BinOp, Block, Expr, FieldDecl, Lhs, Param, Procedure, Program, Stmt, Type, UnOp};
pub use parser::{parse_expr, parse_program, ParseError};
pub use printer::program_to_string;
pub use typecheck::{check_program, TypeError};
