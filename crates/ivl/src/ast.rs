//! Abstract syntax of the intermediate verification language.
//!
//! A [`Program`] is a set of field declarations (the class signature `F` of
//! the paper, plus the ghost monadic maps `G` once an intrinsic definition has
//! been attached) and a set of procedures with contracts. Statements include
//! the FWYB *macro statements* of §4.1 of the paper; they are ordinary syntax
//! here and are expanded into mutations plus broken-set updates by
//! `ids-core::fwyb`.

use std::fmt;

/// Types of the surface language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Type {
    /// Booleans.
    Bool,
    /// Mathematical integers.
    Int,
    /// Rationals/reals (used for `rank` ghost maps).
    Real,
    /// Heap locations (`C?` — includes `nil`).
    Loc,
    /// Finite sets of locations.
    SetLoc,
    /// Finite sets of integers.
    SetInt,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "Bool"),
            Type::Int => write!(f, "Int"),
            Type::Real => write!(f, "Real"),
            Type::Loc => write!(f, "Loc"),
            Type::SetLoc => write!(f, "Set<Loc>"),
            Type::SetInt => write!(f, "Set<Int>"),
        }
    }
}

impl Type {
    /// True for the set types.
    pub fn is_set(self) -> bool {
        matches!(self, Type::SetLoc | Type::SetInt)
    }

    /// The element type of a set type.
    pub fn elem(self) -> Option<Type> {
        match self {
            Type::SetLoc => Some(Type::Loc),
            Type::SetInt => Some(Type::Int),
            _ => None,
        }
    }
}

/// A field (pointer field, data field, or ghost monadic map) of the class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Value type of the field.
    pub ty: Type,
    /// True if the field is a ghost monadic map.
    pub ghost: bool,
}

/// A procedure parameter or return value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// True if the parameter is ghost.
    pub ghost: bool,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Division by a constant (only well-typed with a literal divisor).
    Div,
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Implication.
    Implies,
    /// Bi-implication.
    Iff,
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Set union.
    Union,
    /// Set intersection.
    Inter,
    /// Set difference.
    Diff,
    /// Set membership (`x in S`).
    Member,
    /// Subset (`S subset T`).
    Subset,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Boolean literal.
    BoolLit(bool),
    /// Integer literal.
    IntLit(i128),
    /// Rational literal `num/den`.
    RealLit(i128, i128),
    /// The null location.
    Nil,
    /// The empty set of locations (`{}` defaults to `Set<Loc>`; the
    /// typechecker coerces by context).
    EmptySet(Type),
    /// A variable reference.
    Var(String),
    /// Field read `e.f` (also used for ghost monadic maps).
    Field(Box<Expr>, String),
    /// `old(e)` — the value of `e` in the procedure pre-state.
    Old(Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional expression `ite(c, t, e)`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Singleton set `{e}`.
    Singleton(Box<Expr>),
    /// Application of a named predicate/function defined by the verification
    /// context (e.g. `LC(x)`, the local condition instantiated at `x`).
    App(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Convenience constructor for a field read on a variable.
    pub fn field(obj: &str, field: &str) -> Expr {
        Expr::Field(Box::new(Expr::var(obj)), field.to_string())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for conjunction of many expressions.
    pub fn and_all(exprs: Vec<Expr>) -> Expr {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::bin(BinOp::And, a, b))
            .unwrap_or(Expr::BoolLit(true))
    }
}

/// The left-hand side of an assignment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Lhs {
    /// Assignment to a local variable / parameter.
    Var(String),
    /// Assignment to a field of the object held in the named variable.
    Field(String, String),
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    VarDecl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: Type,
        /// True for ghost variables.
        ghost: bool,
        /// Optional initial value.
        init: Option<Expr>,
    },
    /// Assignment `lhs := e`.
    Assign {
        /// Target.
        lhs: Lhs,
        /// Source expression.
        rhs: Expr,
    },
    /// Nondeterministic assignment.
    Havoc {
        /// The variable to havoc.
        name: String,
    },
    /// `assume e;`
    Assume(Expr),
    /// `assert e;`
    Assert(Expr),
    /// Allocation `x := new();`
    Alloc {
        /// The variable receiving the fresh location.
        lhs: String,
    },
    /// Conditional.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Else branch.
        else_branch: Block,
    },
    /// Loop with invariants.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop invariants.
        invariants: Vec<Expr>,
        /// Optional termination measure (required for ghost loops).
        decreases: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// Procedure call `call r1, r2 := p(a, b);`
    Call {
        /// Result targets.
        lhs: Vec<String>,
        /// Callee name.
        proc: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `return;`
    Return,
    /// A FWYB macro statement such as `Mut(x, next, y);` — kept abstract in
    /// the AST and expanded by `ids-core::fwyb`.
    Macro {
        /// Macro name (`Mut`, `NewObj`, `AssertLCAndRemove`, `InferLCOutsideBr`, …).
        name: String,
        /// Macro arguments.
        args: Vec<Expr>,
    },
}

/// A sequence of statements.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A procedure with its contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Input parameters.
    pub params: Vec<Param>,
    /// Output parameters.
    pub returns: Vec<Param>,
    /// Preconditions.
    pub requires: Vec<Expr>,
    /// Postconditions (may use `old(..)`).
    pub ensures: Vec<Expr>,
    /// The modified heaplet: a `Set<Loc>` expression over the parameters, used
    /// for frame reasoning across calls (§3.7 / Appendix A.3 of the paper).
    pub modifies: Option<Expr>,
    /// Optional termination measure.
    pub decreases: Option<Expr>,
    /// The body; `None` for specification-only (abstract) procedures.
    pub body: Option<Block>,
}

/// A whole program: class signature plus procedures.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Field declarations (user fields and ghost monadic maps).
    pub fields: Vec<FieldDecl>,
    /// Procedure declarations.
    pub procedures: Vec<Procedure>,
}

impl Program {
    /// Looks up a field declaration by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// Merges another program's declarations into this one (used to combine a
    /// data-structure definition prelude with per-method files).
    pub fn extend(&mut self, other: Program) {
        for f in other.fields {
            if self.field(&f.name).is_none() {
                self.fields.push(f);
            }
        }
        for p in other.procedures {
            self.procedures.retain(|q| q.name != p.name);
            self.procedures.push(p);
        }
    }
}

/// Counts the executable (non-ghost, non-spec) statements of a procedure body,
/// mirroring the "LOC" column of Table 2.
pub fn executable_loc(proc: &Procedure) -> usize {
    fn count_block(b: &Block) -> usize {
        b.stmts.iter().map(count_stmt).sum()
    }
    fn count_stmt(s: &Stmt) -> usize {
        match s {
            Stmt::VarDecl { ghost, .. } => {
                if *ghost {
                    0
                } else {
                    1
                }
            }
            Stmt::Assign { .. } | Stmt::Alloc { .. } | Stmt::Call { .. } | Stmt::Return => 1,
            Stmt::Havoc { .. } => 1,
            Stmt::Assume(_) | Stmt::Assert(_) => 0,
            Stmt::Macro { name, .. } => {
                // Mut/NewObj correspond to one executable statement each; the
                // purely ghost macros correspond to none.
                if name == "Mut" || name == "NewObj" {
                    1
                } else {
                    0
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => 1 + count_block(then_branch) + count_block(else_branch),
            Stmt::While { body, .. } => 1 + count_block(body),
        }
    }
    proc.body.as_ref().map(count_block).unwrap_or(0)
}

/// Counts specification lines (requires/ensures/modifies/invariants),
/// mirroring the "Spec" column of Table 2.
pub fn spec_lines(proc: &Procedure) -> usize {
    fn invariants_in(b: &Block) -> usize {
        b.stmts
            .iter()
            .map(|s| match s {
                Stmt::While {
                    invariants, body, ..
                } => invariants.len() + invariants_in(body),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => invariants_in(then_branch) + invariants_in(else_branch),
                _ => 0,
            })
            .sum()
    }
    proc.requires.len()
        + proc.ensures.len()
        + proc.modifies.iter().count()
        + proc.body.as_ref().map(invariants_in).unwrap_or(0)
}

/// Counts ghost annotation statements (ghost declarations, ghost macro
/// statements, assumes/asserts inserted by the engineer), mirroring the
/// "Annotations" column of Table 2.
pub fn annotation_lines(proc: &Procedure) -> usize {
    fn count_block(b: &Block) -> usize {
        b.stmts.iter().map(count_stmt).sum()
    }
    fn count_stmt(s: &Stmt) -> usize {
        match s {
            Stmt::VarDecl { ghost: true, .. } => 1,
            Stmt::VarDecl { ghost: false, .. } => 0,
            Stmt::Assume(_) | Stmt::Assert(_) => 1,
            Stmt::Macro { name, .. } => {
                if name == "Mut" || name == "NewObj" {
                    // The broken-set update half of the macro is ghost.
                    1
                } else {
                    1
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => count_block(then_branch) + count_block(else_branch),
            Stmt::While { body, .. } => count_block(body),
            _ => 0,
        }
    }
    proc.body.as_ref().map(count_block).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup_and_extend() {
        let mut p = Program::default();
        p.fields.push(FieldDecl {
            name: "next".into(),
            ty: Type::Loc,
            ghost: false,
        });
        assert!(p.field("next").is_some());
        assert!(p.field("prev").is_none());

        let mut q = Program::default();
        q.fields.push(FieldDecl {
            name: "prev".into(),
            ty: Type::Loc,
            ghost: true,
        });
        q.procedures.push(Procedure {
            name: "find".into(),
            params: vec![],
            returns: vec![],
            requires: vec![],
            ensures: vec![],
            modifies: None,
            decreases: None,
            body: None,
        });
        p.extend(q);
        assert!(p.field("prev").is_some());
        assert!(p.procedure("find").is_some());
    }

    #[test]
    fn loc_counting() {
        let proc = Procedure {
            name: "m".into(),
            params: vec![],
            returns: vec![],
            requires: vec![Expr::BoolLit(true)],
            ensures: vec![Expr::BoolLit(true), Expr::BoolLit(true)],
            modifies: None,
            decreases: None,
            body: Some(Block {
                stmts: vec![
                    Stmt::Assign {
                        lhs: Lhs::Var("x".into()),
                        rhs: Expr::Nil,
                    },
                    Stmt::Assert(Expr::BoolLit(true)),
                    Stmt::Macro {
                        name: "Mut".into(),
                        args: vec![],
                    },
                ],
            }),
        };
        assert_eq!(executable_loc(&proc), 2);
        assert_eq!(spec_lines(&proc), 3);
        assert_eq!(annotation_lines(&proc), 2);
    }

    #[test]
    fn type_helpers() {
        assert!(Type::SetLoc.is_set());
        assert_eq!(Type::SetLoc.elem(), Some(Type::Loc));
        assert_eq!(Type::Int.elem(), None);
        assert_eq!(Type::SetInt.to_string(), "Set<Int>");
    }
}
