//! Tokenizer for the IVL surface syntax.

use std::fmt;

/// A token of the surface syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i128),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `==>`
    Implies,
    /// `<==>`
    Iff,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{}", s),
            Tok::Int(n) => write!(f, "{}", n),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::Assign => write!(f, ":="),
            Tok::EqEq => write!(f, "=="),
            Tok::Neq => write!(f, "!="),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Implies => write!(f, "==>"),
            Tok::Iff => write!(f, "<==>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// The 1-based source line the token starts on.
    pub line: usize,
}

/// A lexing error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input. `//` line comments and `/* */` block comments are
/// skipped.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            i += 2;
            while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(n);
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            out.push(SpannedTok {
                tok: Tok::Ident(word),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text.parse::<i128>().map_err(|_| LexError {
                message: format!("integer literal out of range: {}", text),
                line,
            })?;
            out.push(SpannedTok {
                tok: Tok::Int(value),
                line,
            });
            continue;
        }
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        let three: String = chars[i..n.min(i + 3)].iter().collect();
        let four: String = chars[i..n.min(i + 4)].iter().collect();
        let (tok, len) = if four == "<==>" {
            (Tok::Iff, 4)
        } else if three == "==>" {
            (Tok::Implies, 3)
        } else if two == ":=" {
            (Tok::Assign, 2)
        } else if two == "==" {
            (Tok::EqEq, 2)
        } else if two == "!=" {
            (Tok::Neq, 2)
        } else if two == "<=" {
            (Tok::Le, 2)
        } else if two == ">=" {
            (Tok::Ge, 2)
        } else if two == "&&" {
            (Tok::AndAnd, 2)
        } else if two == "||" {
            (Tok::OrOr, 2)
        } else {
            let single = match c {
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                ',' => Tok::Comma,
                ';' => Tok::Semi,
                ':' => Tok::Colon,
                '.' => Tok::Dot,
                '<' => Tok::Lt,
                '>' => Tok::Gt,
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '/' => Tok::Slash,
                '!' => Tok::Bang,
                other => {
                    return Err(LexError {
                        message: format!("unexpected character '{}'", other),
                        line,
                    })
                }
            };
            (single, 1)
        };
        out.push(SpannedTok { tok, line });
        i += len;
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x := y.next;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("y".into()),
                Tok::Dot,
                Tok::Ident("next".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a ==> b <==> c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Implies,
                Tok::Ident("b".into()),
                Tok::Iff,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = tokenize("x // comment\n/* block\ncomment */ y").unwrap();
        assert_eq!(spanned[0].tok, Tok::Ident("x".into()));
        assert_eq!(spanned[1].tok, Tok::Ident("y".into()));
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
    }

    #[test]
    fn error_on_unknown_char() {
        assert!(tokenize("x @ y").is_err());
    }
}
