//! Pretty-printer from the AST back to surface syntax.
//!
//! Used for debugging, for the documentation examples, and to display the
//! FWYB-expanded programs that `ids-core` produces.

use std::fmt::Write;

use crate::ast::*;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.fields {
        let _ = writeln!(
            out,
            "field {}{}: {};",
            if f.ghost { "ghost " } else { "" },
            f.name,
            f.ty
        );
    }
    if !p.fields.is_empty() {
        out.push('\n');
    }
    for proc in &p.procedures {
        out.push_str(&procedure_to_string(proc));
        out.push('\n');
    }
    out
}

/// Renders one procedure.
pub fn procedure_to_string(p: &Procedure) -> String {
    let mut out = String::new();
    let params = p
        .params
        .iter()
        .map(param_to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "procedure {}({})", p.name, params);
    if !p.returns.is_empty() {
        let rets = p
            .returns
            .iter()
            .map(param_to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(out, " returns ({})", rets);
    }
    out.push('\n');
    for r in &p.requires {
        let _ = writeln!(out, "  requires {};", expr_to_string(r));
    }
    for e in &p.ensures {
        let _ = writeln!(out, "  ensures {};", expr_to_string(e));
    }
    if let Some(m) = &p.modifies {
        let _ = writeln!(out, "  modifies {};", expr_to_string(m));
    }
    if let Some(d) = &p.decreases {
        let _ = writeln!(out, "  decreases {};", expr_to_string(d));
    }
    match &p.body {
        None => out.push_str(";\n"),
        Some(b) => {
            out.push_str("{\n");
            out.push_str(&block_to_string(b, 1));
            out.push_str("}\n");
        }
    }
    out
}

fn param_to_string(p: &Param) -> String {
    format!(
        "{}{}: {}",
        if p.ghost { "ghost " } else { "" },
        p.name,
        p.ty
    )
}

fn indent(level: usize) -> String {
    "  ".repeat(level)
}

/// Renders a block at the given indentation level.
pub fn block_to_string(b: &Block, level: usize) -> String {
    let mut out = String::new();
    for s in &b.stmts {
        out.push_str(&stmt_to_string(s, level));
    }
    out
}

/// Renders one statement at the given indentation level.
pub fn stmt_to_string(s: &Stmt, level: usize) -> String {
    let ind = indent(level);
    match s {
        Stmt::VarDecl {
            name,
            ty,
            ghost,
            init,
        } => match init {
            Some(e) => format!(
                "{}var {}{}: {} := {};\n",
                ind,
                if *ghost { "ghost " } else { "" },
                name,
                ty,
                expr_to_string(e)
            ),
            None => format!(
                "{}var {}{}: {};\n",
                ind,
                if *ghost { "ghost " } else { "" },
                name,
                ty
            ),
        },
        Stmt::Assign { lhs, rhs } => match lhs {
            Lhs::Var(v) => format!("{}{} := {};\n", ind, v, expr_to_string(rhs)),
            Lhs::Field(v, f) => format!("{}{}.{} := {};\n", ind, v, f, expr_to_string(rhs)),
        },
        Stmt::Havoc { name } => format!("{}havoc {};\n", ind, name),
        Stmt::Assume(e) => format!("{}assume {};\n", ind, expr_to_string(e)),
        Stmt::Assert(e) => format!("{}assert {};\n", ind, expr_to_string(e)),
        Stmt::Alloc { lhs } => format!("{}{} := new();\n", ind, lhs),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = format!("{}if ({}) {{\n", ind, expr_to_string(cond));
            out.push_str(&block_to_string(then_branch, level + 1));
            if else_branch.stmts.is_empty() {
                out.push_str(&format!("{}}}\n", ind));
            } else {
                out.push_str(&format!("{}}} else {{\n", ind));
                out.push_str(&block_to_string(else_branch, level + 1));
                out.push_str(&format!("{}}}\n", ind));
            }
            out
        }
        Stmt::While {
            cond,
            invariants,
            decreases,
            body,
        } => {
            let mut out = format!("{}while ({})\n", ind, expr_to_string(cond));
            for inv in invariants {
                out.push_str(&format!("{}  invariant {};\n", ind, expr_to_string(inv)));
            }
            if let Some(d) = decreases {
                out.push_str(&format!("{}  decreases {};\n", ind, expr_to_string(d)));
            }
            out.push_str(&format!("{}{{\n", ind));
            out.push_str(&block_to_string(body, level + 1));
            out.push_str(&format!("{}}}\n", ind));
            out
        }
        Stmt::Call { lhs, proc, args } => {
            let args = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            if lhs.is_empty() {
                format!("{}call {}({});\n", ind, proc, args)
            } else {
                format!("{}call {} := {}({});\n", ind, lhs.join(", "), proc, args)
            }
        }
        Stmt::Return => format!("{}return;\n", ind),
        Stmt::Macro { name, args } => {
            let args = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}{}({});\n", ind, name, args)
        }
    }
}

/// Renders an expression.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::BoolLit(b) => b.to_string(),
        Expr::IntLit(n) => n.to_string(),
        Expr::RealLit(n, d) => format!("({} / {})", n, d),
        Expr::Nil => "nil".into(),
        Expr::EmptySet(Type::SetInt) => "emptyIntSet".into(),
        Expr::EmptySet(_) => "{}".into(),
        Expr::Var(v) => v.clone(),
        Expr::Field(obj, f) => format!("{}.{}", expr_to_string(obj), f),
        Expr::Old(inner) => format!("old({})", expr_to_string(inner)),
        Expr::Unary(UnOp::Not, inner) => format!("!({})", expr_to_string(inner)),
        Expr::Unary(UnOp::Neg, inner) => format!("-({})", expr_to_string(inner)),
        Expr::Binary(op, a, b) => {
            let (sa, sb) = (expr_to_string(a), expr_to_string(b));
            match op {
                BinOp::Add => format!("({} + {})", sa, sb),
                BinOp::Sub => format!("({} - {})", sa, sb),
                BinOp::Div => format!("({} / {})", sa, sb),
                BinOp::And => format!("({} && {})", sa, sb),
                BinOp::Or => format!("({} || {})", sa, sb),
                BinOp::Implies => format!("({} ==> {})", sa, sb),
                BinOp::Iff => format!("({} <==> {})", sa, sb),
                BinOp::Eq => format!("({} == {})", sa, sb),
                BinOp::Ne => format!("({} != {})", sa, sb),
                BinOp::Lt => format!("({} < {})", sa, sb),
                BinOp::Le => format!("({} <= {})", sa, sb),
                BinOp::Gt => format!("({} > {})", sa, sb),
                BinOp::Ge => format!("({} >= {})", sa, sb),
                BinOp::Union => format!("union({}, {})", sa, sb),
                BinOp::Inter => format!("inter({}, {})", sa, sb),
                BinOp::Diff => format!("diff({}, {})", sa, sb),
                BinOp::Member => format!("({} in {})", sa, sb),
                BinOp::Subset => format!("({} subset {})", sa, sb),
            }
        }
        Expr::Ite(c, t, f) => format!(
            "ite({}, {}, {})",
            expr_to_string(c),
            expr_to_string(t),
            expr_to_string(f)
        ),
        Expr::Singleton(inner) => format!("{{{}}}", expr_to_string(inner)),
        Expr::App(name, args) => {
            let args = args
                .iter()
                .map(expr_to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}({})", name, args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn roundtrip_expression() {
        let e = parse_expr("x.next != nil ==> x.key <= x.next.key").unwrap();
        let s = expr_to_string(&e);
        let e2 = parse_expr(&s).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn roundtrip_program() {
        let src = r#"
            field next: Loc;
            field ghost length: Int;

            procedure touch(x: Loc) returns (y: Loc)
              requires x != nil;
              ensures y != nil;
            {
              var t: Loc := x.next;
              if (t == nil) {
                y := x;
              } else {
                y := t;
              }
              while (y != nil)
                invariant true;
              {
                y := y.next;
              }
              Mut(x, next, y);
            }
        "#;
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn set_literals_print() {
        let e = parse_expr("union({x}, {})").unwrap();
        let s = expr_to_string(&e);
        assert!(s.contains("{x}"));
        let e2 = parse_expr(&s).unwrap();
        assert_eq!(e, e2);
    }
}
