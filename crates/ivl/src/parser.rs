//! Recursive-descent parser for the IVL surface syntax.
//!
//! The grammar (roughly):
//!
//! ```text
//! program   ::= (fielddecl | procedure)*
//! fielddecl ::= "field" ["ghost"] ident ":" type ";"
//! type      ::= "Bool" | "Int" | "Real" | "Loc" | "Set" "<" ("Loc"|"Int") ">"
//! procedure ::= "procedure" ident "(" params ")" ["returns" "(" params ")"]
//!               spec* (block | ";")
//! spec      ::= ("requires"|"ensures"|"modifies"|"decreases") expr ";"
//! stmt      ::= "var" ["ghost"] ident ":" type [":=" expr] ";"
//!             | ident ":=" "new" "(" ")" ";"
//!             | ident ":=" expr ";"
//!             | ident "." ident ":=" expr ";"
//!             | "havoc" ident ";"
//!             | "assume" expr ";" | "assert" expr ";"
//!             | "if" "(" expr ")" block ["else" (block | ifstmt)]
//!             | "while" "(" expr ")" ("invariant" expr ";" | "decreases" expr ";")* block
//!             | "call" [idents ":="] ident "(" exprs ")" ";"
//!             | "return" ";"
//!             | ident "(" exprs ")" ";"                    // FWYB macro statement
//! expr      ::= iff-level with the usual precedences; set operations are the
//!               function-style builtins union/inter/diff, plus "x in S" and
//!               "S subset T" at comparison level; "{...}" are set literals.
//! ```

use std::fmt;

use crate::ast::*;
use crate::lexer::{tokenize, LexError, SpannedTok, Tok};

/// A parse error with a source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a whole program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

/// Parses a single expression (useful in tests and for building local
/// conditions programmatically).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{}', found '{}'", t, self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected '{}', found '{}'", kw, other)),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{}'", other)),
        }
    }

    // ------------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        loop {
            if self.peek() == &Tok::Eof {
                break;
            }
            if self.at_kw("field") {
                program.fields.push(self.field_decl()?);
            } else if self.at_kw("procedure") {
                program.procedures.push(self.procedure()?);
            } else {
                return self.err(format!(
                    "expected 'field' or 'procedure', found '{}'",
                    self.peek()
                ));
            }
        }
        Ok(program)
    }

    fn field_decl(&mut self) -> Result<FieldDecl, ParseError> {
        self.expect_kw("field")?;
        let ghost = if self.at_kw("ghost") {
            self.bump();
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(&Tok::Semi)?;
        Ok(FieldDecl { name, ty, ghost })
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "Bool" => Ok(Type::Bool),
            "Int" => Ok(Type::Int),
            "Real" => Ok(Type::Real),
            "Loc" => Ok(Type::Loc),
            "Set" => {
                self.expect(&Tok::Lt)?;
                let elem = self.ident()?;
                self.expect(&Tok::Gt)?;
                match elem.as_str() {
                    "Loc" => Ok(Type::SetLoc),
                    "Int" => Ok(Type::SetInt),
                    other => self.err(format!("unsupported set element type '{}'", other)),
                }
            }
            other => self.err(format!("unknown type '{}'", other)),
        }
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let ghost = if self.at_kw("ghost") {
                    self.bump();
                    true
                } else {
                    false
                };
                let name = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name, ty, ghost });
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(params)
    }

    fn procedure(&mut self) -> Result<Procedure, ParseError> {
        self.expect_kw("procedure")?;
        let name = self.ident()?;
        let params = self.param_list()?;
        let returns = if self.at_kw("returns") {
            self.bump();
            self.param_list()?
        } else {
            Vec::new()
        };
        let mut requires = Vec::new();
        let mut ensures = Vec::new();
        let mut modifies = None;
        let mut decreases = None;
        loop {
            if self.at_kw("requires") {
                self.bump();
                requires.push(self.expr()?);
                self.expect(&Tok::Semi)?;
            } else if self.at_kw("ensures") {
                self.bump();
                ensures.push(self.expr()?);
                self.expect(&Tok::Semi)?;
            } else if self.at_kw("modifies") {
                self.bump();
                modifies = Some(self.expr()?);
                self.expect(&Tok::Semi)?;
            } else if self.at_kw("decreases") {
                self.bump();
                decreases = Some(self.expr()?);
                self.expect(&Tok::Semi)?;
            } else {
                break;
            }
        }
        // A body starts with '{'; anything else means a specification-only
        // procedure (an optional trailing ';' is consumed).
        let body = if self.peek() == &Tok::LBrace {
            Some(self.block()?)
        } else {
            if self.peek() == &Tok::Semi {
                self.bump();
            }
            None
        };
        Ok(Procedure {
            name,
            params,
            returns,
            requires,
            ensures,
            modifies,
            decreases,
            body,
        })
    }

    // ----------------------------------------------------------- statements

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.at_kw("var") {
            self.bump();
            let ghost = if self.at_kw("ghost") {
                self.bump();
                true
            } else {
                false
            };
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.ty()?;
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::VarDecl {
                name,
                ty,
                ghost,
                init,
            });
        }
        if self.at_kw("havoc") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Havoc { name });
        }
        if self.at_kw("assume") {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Assume(e));
        }
        if self.at_kw("assert") {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Assert(e));
        }
        if self.at_kw("return") {
            self.bump();
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Return);
        }
        if self.at_kw("if") {
            return self.if_stmt();
        }
        if self.at_kw("while") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            let mut invariants = Vec::new();
            let mut decreases = None;
            loop {
                if self.at_kw("invariant") {
                    self.bump();
                    invariants.push(self.expr()?);
                    self.expect(&Tok::Semi)?;
                } else if self.at_kw("decreases") {
                    self.bump();
                    decreases = Some(self.expr()?);
                    self.expect(&Tok::Semi)?;
                } else {
                    break;
                }
            }
            let body = self.block()?;
            return Ok(Stmt::While {
                cond,
                invariants,
                decreases,
                body,
            });
        }
        if self.at_kw("call") {
            self.bump();
            // call [x, y :=] p(args);
            let first = self.ident()?;
            let mut lhs = Vec::new();
            let proc = if self.peek() == &Tok::LParen {
                first
            } else {
                lhs.push(first);
                while self.peek() == &Tok::Comma {
                    self.bump();
                    lhs.push(self.ident()?);
                }
                self.expect(&Tok::Assign)?;
                self.ident()?
            };
            self.expect(&Tok::LParen)?;
            let args = self.expr_list(&Tok::RParen)?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Call { lhs, proc, args });
        }
        // Starts with an identifier: assignment, field assignment, allocation
        // or macro statement.
        let name = self.ident()?;
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                if self.at_kw("new") {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Semi)?;
                    return Ok(Stmt::Alloc { lhs: name });
                }
                let rhs = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign {
                    lhs: Lhs::Var(name),
                    rhs,
                })
            }
            Tok::Dot => {
                self.bump();
                let field = self.ident()?;
                self.expect(&Tok::Assign)?;
                let rhs = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign {
                    lhs: Lhs::Field(name, field),
                    rhs,
                })
            }
            Tok::LParen => {
                self.bump();
                let args = self.expr_list(&Tok::RParen)?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Macro { name, args })
            }
            other => self.err(format!(
                "expected ':=', '.' or '(' after identifier, found '{}'",
                other
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if self.at_kw("else") {
            self.bump();
            if self.at_kw("if") {
                Block {
                    stmts: vec![self.if_stmt()?],
                }
            } else {
                self.block()?
            }
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn expr_list(&mut self, terminator: &Tok) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.peek() != terminator {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        Ok(args)
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.iff_expr()
    }

    fn iff_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.implies_expr()?;
        if self.peek() == &Tok::Iff {
            self.bump();
            let rhs = self.iff_expr()?;
            Ok(Expr::bin(BinOp::Iff, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn implies_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.or_expr()?;
        if self.peek() == &Tok::Implies {
            self.bump();
            // Right-associative.
            let rhs = self.implies_expr()?;
            Ok(Expr::bin(BinOp::Implies, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Neq => Some(BinOp::Ne),
            Tok::Le => Some(BinOp::Le),
            Tok::Ge => Some(BinOp::Ge),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ident(s) if s == "in" => Some(BinOp::Member),
            Tok::Ident(s) if s == "subset" => Some(BinOp::Subset),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        while self.peek() == &Tok::Dot {
            self.bump();
            let field = self.ident()?;
            e = Expr::Field(Box::new(e), field);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::IntLit(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                // Set literal: {} or {e1, e2, ...}
                let elems = self.expr_list(&Tok::RBrace)?;
                self.expect(&Tok::RBrace)?;
                let mut set: Option<Expr> = None;
                for elem in elems {
                    let single = Expr::Singleton(Box::new(elem));
                    set = Some(match set {
                        None => single,
                        Some(acc) => Expr::bin(BinOp::Union, acc, single),
                    });
                }
                Ok(set.unwrap_or(Expr::EmptySet(Type::SetLoc)))
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Expr::BoolLit(true)),
                    "false" => return Ok(Expr::BoolLit(false)),
                    "nil" => return Ok(Expr::Nil),
                    "emptyIntSet" => return Ok(Expr::EmptySet(Type::SetInt)),
                    "emptyLocSet" => return Ok(Expr::EmptySet(Type::SetLoc)),
                    _ => {}
                }
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let args = self.expr_list(&Tok::RParen)?;
                    self.expect(&Tok::RParen)?;
                    return self.builtin_or_app(&name, args);
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("unexpected token '{}' in expression", other)),
        }
    }

    fn builtin_or_app(&mut self, name: &str, mut args: Vec<Expr>) -> Result<Expr, ParseError> {
        let binop = |op: BinOp, args: &mut Vec<Expr>| -> Result<Expr, ParseError> {
            if args.len() != 2 {
                Err(ParseError {
                    message: format!("'{:?}' expects 2 arguments", op),
                    line: 0,
                })
            } else {
                let rhs = args.pop().unwrap();
                let lhs = args.pop().unwrap();
                Ok(Expr::bin(op, lhs, rhs))
            }
        };
        match name {
            "old" => {
                if args.len() != 1 {
                    return self.err("'old' expects 1 argument");
                }
                Ok(Expr::Old(Box::new(args.pop().unwrap())))
            }
            "ite" => {
                if args.len() != 3 {
                    return self.err("'ite' expects 3 arguments");
                }
                let e = args.pop().unwrap();
                let t = args.pop().unwrap();
                let c = args.pop().unwrap();
                Ok(Expr::Ite(Box::new(c), Box::new(t), Box::new(e)))
            }
            "union" => binop(BinOp::Union, &mut args),
            "inter" => binop(BinOp::Inter, &mut args),
            "diff" => binop(BinOp::Diff, &mut args),
            _ => Ok(Expr::App(name.to_string(), args)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_program() {
        let src = r#"
            field next: Loc;
            field key: Int;
            field ghost keys: Set<Int>;

            procedure insert(x: Loc, k: Int) returns (r: Loc)
              requires x != nil;
              ensures r != nil;
              modifies {x};
            {
              var y: Loc;
              y := x.next;
              if (y == nil) {
                r := x;
              } else {
                r := y;
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.fields.len(), 3);
        assert!(p.field("keys").unwrap().ghost);
        let proc = p.procedure("insert").unwrap();
        assert_eq!(proc.params.len(), 2);
        assert_eq!(proc.returns.len(), 1);
        assert_eq!(proc.requires.len(), 1);
        assert!(proc.modifies.is_some());
        assert!(proc.body.is_some());
    }

    #[test]
    fn parse_expressions() {
        let e = parse_expr("x.next != nil ==> x.key <= x.next.key").unwrap();
        match e {
            Expr::Binary(BinOp::Implies, _, _) => {}
            other => panic!("unexpected {:?}", other),
        }
        let e = parse_expr("union({x}, y.hslist)").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Union, _, _)));
        let e = parse_expr("k in x.keys && Br == {}").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
        let e = parse_expr("old(x.length) + 1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
        let e = parse_expr("ite(c, 1, 2)").unwrap();
        assert!(matches!(e, Expr::Ite(_, _, _)));
    }

    #[test]
    fn parse_macro_statements() {
        let src = r#"
            field next: Loc;
            procedure m(x: Loc, y: Loc)
            {
              Mut(x, next, y);
              NewObj(y);
              AssertLCAndRemove(x);
              InferLCOutsideBr(x);
            }
        "#;
        let p = parse_program(src).unwrap();
        let body = p.procedure("m").unwrap().body.clone().unwrap();
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(&body.stmts[0], Stmt::Macro { name, .. } if name == "Mut"));
    }

    #[test]
    fn parse_while_with_invariants() {
        let src = r#"
            field next: Loc;
            procedure loop_it(x: Loc)
            {
              var cur: Loc;
              cur := x;
              while (cur != nil)
                invariant true;
                decreases 0;
              {
                cur := cur.next;
              }
            }
        "#;
        let p = parse_program(src).unwrap();
        let body = p.procedure("loop_it").unwrap().body.clone().unwrap();
        match &body.stmts[2] {
            Stmt::While {
                invariants,
                decreases,
                ..
            } => {
                assert_eq!(invariants.len(), 1);
                assert!(decreases.is_some());
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn parse_call_and_alloc() {
        let src = r#"
            field next: Loc;
            procedure callee(a: Loc) returns (b: Loc);
            procedure caller(x: Loc) returns (y: Loc)
            {
              var t: Loc;
              t := new();
              call y := callee(t);
              call callee(x);
              return;
            }
        "#;
        let p = parse_program(src).unwrap();
        let body = p.procedure("caller").unwrap().body.clone().unwrap();
        assert!(matches!(&body.stmts[1], Stmt::Alloc { .. }));
        assert!(matches!(&body.stmts[2], Stmt::Call { lhs, .. } if lhs.len() == 1));
        assert!(matches!(&body.stmts[3], Stmt::Call { lhs, .. } if lhs.is_empty()));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_program("field next Loc;").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_program("procedure p()\n{\n  x := ;\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            field key: Int;
            procedure m(x: Loc, k: Int) returns (r: Int)
            {
              if (k < x.key) { r := 0; }
              else if (k > x.key) { r := 1; }
              else { r := 2; }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert!(p.procedure("m").is_some());
    }
}
