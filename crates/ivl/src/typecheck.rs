//! Scope and type checking for IVL programs.
//!
//! The checker validates variable scoping, field existence, the types of
//! expressions and statements, and basic call-site arity/typing. It is
//! deliberately lenient in two places that the verification layers above rely
//! on:
//!
//! * the special ghost variables `Br`, `Br2` (broken sets) and `Alloc` (the
//!   allocation set) are implicitly in scope with type `Set<Loc>` — the FWYB
//!   instrumentation introduces and threads them;
//! * applications `Name(args)` of unknown predicates (such as `LC(x)`, the
//!   local condition of the active intrinsic definition) are typed `Bool` as
//!   long as their arguments are well-typed; `ids-core` substitutes their
//!   definitions before verification.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// A type error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError {
    /// Human-readable message.
    pub message: String,
    /// Procedure in which the error occurred, if any.
    pub procedure: Option<String>,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.procedure {
            Some(p) => write!(f, "type error in procedure '{}': {}", p, self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

/// Checks a whole program.
pub fn check_program(program: &Program) -> Result<(), TypeError> {
    let mut field_names = HashMap::new();
    for f in &program.fields {
        if field_names.insert(f.name.clone(), f.ty).is_some() {
            return Err(TypeError {
                message: format!("duplicate field '{}'", f.name),
                procedure: None,
            });
        }
    }
    for proc in &program.procedures {
        check_procedure(program, proc).map_err(|mut e| {
            e.procedure = Some(proc.name.clone());
            e
        })?;
    }
    Ok(())
}

struct Ctx<'a> {
    program: &'a Program,
    vars: HashMap<String, Type>,
}

impl<'a> Ctx<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TypeError> {
        Err(TypeError {
            message: message.into(),
            procedure: None,
        })
    }

    fn var_type(&self, name: &str) -> Result<Type, TypeError> {
        if let Some(&t) = self.vars.get(name) {
            return Ok(t);
        }
        // Implicitly scoped ghost state of the FWYB instrumentation.
        if name == "Br" || name == "Br2" || name == "Alloc" || name.starts_with("Br_") {
            return Ok(Type::SetLoc);
        }
        self.err(format!("unknown variable '{}'", name))
    }
}

fn check_procedure(program: &Program, proc: &Procedure) -> Result<(), TypeError> {
    let mut ctx = Ctx {
        program,
        vars: HashMap::new(),
    };
    for p in proc.params.iter().chain(proc.returns.iter()) {
        ctx.vars.insert(p.name.clone(), p.ty);
    }
    for r in &proc.requires {
        expect_type(&mut ctx, r, Type::Bool)?;
    }
    for e in &proc.ensures {
        expect_type(&mut ctx, e, Type::Bool)?;
    }
    if let Some(m) = &proc.modifies {
        expect_type(&mut ctx, m, Type::SetLoc)?;
    }
    if let Some(d) = &proc.decreases {
        let t = infer(&mut ctx, d)?;
        if !matches!(t, Type::Int | Type::Real) {
            return ctx.err("decreases clause must be numeric");
        }
    }
    if let Some(body) = &proc.body {
        // Collect local declarations first (block-structured scoping is
        // flattened to procedure scope, as in Boogie).
        collect_locals(&mut ctx, body)?;
        check_block(&mut ctx, body)?;
    }
    Ok(())
}

fn collect_locals(ctx: &mut Ctx<'_>, block: &Block) -> Result<(), TypeError> {
    for s in &block.stmts {
        match s {
            Stmt::VarDecl { name, ty, .. } => {
                ctx.vars.insert(name.clone(), *ty);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_locals(ctx, then_branch)?;
                collect_locals(ctx, else_branch)?;
            }
            Stmt::While { body, .. } => collect_locals(ctx, body)?,
            _ => {}
        }
    }
    Ok(())
}

fn check_block(ctx: &mut Ctx<'_>, block: &Block) -> Result<(), TypeError> {
    for s in &block.stmts {
        check_stmt(ctx, s)?;
    }
    Ok(())
}

fn check_stmt(ctx: &mut Ctx<'_>, stmt: &Stmt) -> Result<(), TypeError> {
    match stmt {
        Stmt::VarDecl { name, ty, init, .. } => {
            if let Some(e) = init {
                let et = infer(ctx, e)?;
                if !compatible(*ty, et) {
                    return ctx.err(format!(
                        "initializer of '{}' has type {} but the variable is {}",
                        name, et, ty
                    ));
                }
            }
            Ok(())
        }
        Stmt::Assign { lhs, rhs } => {
            let target = match lhs {
                Lhs::Var(v) => ctx.var_type(v)?,
                Lhs::Field(obj, field) => {
                    let ot = ctx.var_type(obj)?;
                    if ot != Type::Loc {
                        return ctx.err(format!("'{}' is not a location", obj));
                    }
                    match ctx.program.field(field) {
                        Some(f) => f.ty,
                        None => return ctx.err(format!("unknown field '{}'", field)),
                    }
                }
            };
            let vt = infer(ctx, rhs)?;
            if !compatible(target, vt) {
                return ctx.err(format!(
                    "cannot assign value of type {} to target of type {}",
                    vt, target
                ));
            }
            Ok(())
        }
        Stmt::Havoc { name } => ctx.var_type(name).map(|_| ()),
        Stmt::Assume(e) | Stmt::Assert(e) => expect_type(ctx, e, Type::Bool),
        Stmt::Alloc { lhs } => {
            let t = ctx.var_type(lhs)?;
            if t != Type::Loc {
                return ctx.err(format!("allocation target '{}' must be Loc", lhs));
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expect_type(ctx, cond, Type::Bool)?;
            check_block(ctx, then_branch)?;
            check_block(ctx, else_branch)
        }
        Stmt::While {
            cond,
            invariants,
            decreases,
            body,
        } => {
            expect_type(ctx, cond, Type::Bool)?;
            for inv in invariants {
                expect_type(ctx, inv, Type::Bool)?;
            }
            if let Some(d) = decreases {
                infer(ctx, d)?;
            }
            check_block(ctx, body)
        }
        Stmt::Call { lhs, proc, args } => {
            let callee = match ctx.program.procedure(proc) {
                Some(p) => p.clone(),
                None => return ctx.err(format!("call to unknown procedure '{}'", proc)),
            };
            if callee.params.len() != args.len() {
                return ctx.err(format!(
                    "procedure '{}' expects {} arguments, got {}",
                    proc,
                    callee.params.len(),
                    args.len()
                ));
            }
            for (param, arg) in callee.params.iter().zip(args.iter()) {
                let at = infer(ctx, arg)?;
                if !compatible(param.ty, at) {
                    return ctx.err(format!(
                        "argument for '{}' of '{}' has type {}, expected {}",
                        param.name, proc, at, param.ty
                    ));
                }
            }
            if lhs.len() > callee.returns.len() {
                return ctx.err(format!(
                    "procedure '{}' returns {} values, {} targets given",
                    proc,
                    callee.returns.len(),
                    lhs.len()
                ));
            }
            for (target, ret) in lhs.iter().zip(callee.returns.iter()) {
                let tt = ctx.var_type(target)?;
                if !compatible(tt, ret.ty) {
                    return ctx.err(format!(
                        "call target '{}' has type {}, procedure returns {}",
                        target, tt, ret.ty
                    ));
                }
            }
            Ok(())
        }
        Stmt::Return => Ok(()),
        Stmt::Macro { name, args } => {
            // Macro statements are checked structurally here; their expansion
            // is validated by ids-core. `Mut(x, f, v)` additionally checks the
            // field reference.
            match name.as_str() {
                "Mut" => {
                    if args.len() != 3 {
                        return ctx.err("Mut expects (object, field, value)");
                    }
                    expect_type(ctx, &args[0], Type::Loc)?;
                    let field = match &args[1] {
                        Expr::Var(f) => f.clone(),
                        _ => return ctx.err("second argument of Mut must be a field name"),
                    };
                    let fty = match ctx.program.field(&field) {
                        Some(f) => f.ty,
                        None => return ctx.err(format!("unknown field '{}' in Mut", field)),
                    };
                    let vt = infer(ctx, &args[2])?;
                    if !compatible(fty, vt) {
                        return ctx.err(format!(
                            "Mut value has type {}, field '{}' has type {}",
                            vt, field, fty
                        ));
                    }
                    Ok(())
                }
                "NewObj" => {
                    if args.len() != 1 {
                        return ctx.err("NewObj expects (variable)");
                    }
                    expect_type(ctx, &args[0], Type::Loc)
                }
                "AssertLCAndRemove" | "InferLCOutsideBr" => {
                    if args.len() != 1 && args.len() != 2 {
                        return ctx
                            .err(format!("{} expects (object) or (object, brokenset)", name));
                    }
                    expect_type(ctx, &args[0], Type::Loc)
                }
                _ => {
                    for a in args {
                        infer(ctx, a)?;
                    }
                    Ok(())
                }
            }
        }
    }
}

fn expect_type(ctx: &mut Ctx<'_>, e: &Expr, expected: Type) -> Result<(), TypeError> {
    let t = infer(ctx, e)?;
    if compatible(expected, t) {
        Ok(())
    } else {
        ctx.err(format!("expected {}, found {}", expected, t))
    }
}

/// Type compatibility: exact match or the Int-as-Real coercion. (The
/// polymorphic empty set is handled structurally in `infer`, where the
/// expression — not just its type — is visible.)
fn compatible(expected: Type, found: Type) -> bool {
    expected == found || (expected == Type::Real && found == Type::Int)
}

fn join_numeric(a: Type, b: Type) -> Option<Type> {
    match (a, b) {
        (Type::Int, Type::Int) => Some(Type::Int),
        (Type::Real, Type::Int) | (Type::Int, Type::Real) | (Type::Real, Type::Real) => {
            Some(Type::Real)
        }
        _ => None,
    }
}

fn infer(ctx: &mut Ctx<'_>, e: &Expr) -> Result<Type, TypeError> {
    match e {
        Expr::BoolLit(_) => Ok(Type::Bool),
        Expr::IntLit(_) => Ok(Type::Int),
        Expr::RealLit(_, _) => Ok(Type::Real),
        Expr::Nil => Ok(Type::Loc),
        Expr::EmptySet(t) => Ok(*t),
        Expr::Var(v) => ctx.var_type(v),
        Expr::Field(obj, field) => {
            let ot = infer(ctx, obj)?;
            if ot != Type::Loc {
                return ctx.err(format!(
                    "field access '.{}' on non-location of type {}",
                    field, ot
                ));
            }
            match ctx.program.field(field) {
                Some(f) => Ok(f.ty),
                None => ctx.err(format!("unknown field '{}'", field)),
            }
        }
        Expr::Old(inner) => infer(ctx, inner),
        Expr::Unary(UnOp::Not, inner) => {
            expect_type(ctx, inner, Type::Bool)?;
            Ok(Type::Bool)
        }
        Expr::Unary(UnOp::Neg, inner) => {
            let t = infer(ctx, inner)?;
            join_numeric(t, Type::Int)
                .ok_or(())
                .or_else(|_| ctx.err("negation of non-numeric value"))
        }
        Expr::Binary(op, a, b) => {
            let ta = infer(ctx, a)?;
            let tb = infer(ctx, b)?;
            match op {
                BinOp::Add | BinOp::Sub => join_numeric(ta, tb)
                    .ok_or(())
                    .or_else(|_| ctx.err("arithmetic on non-numeric values")),
                BinOp::Div => {
                    if !matches!(ta, Type::Int | Type::Real) {
                        return ctx.err("division on non-numeric value");
                    }
                    if !matches!(**b, Expr::IntLit(_)) {
                        return ctx.err("division is only supported by an integer literal");
                    }
                    Ok(Type::Real)
                }
                BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff => {
                    if ta != Type::Bool || tb != Type::Bool {
                        return ctx.err("boolean connective on non-boolean values");
                    }
                    Ok(Type::Bool)
                }
                BinOp::Eq | BinOp::Ne => {
                    let ok = compatible(ta, tb)
                        || compatible(tb, ta)
                        || join_numeric(ta, tb).is_some()
                        || (ta.is_set() && tb.is_set());
                    if !ok {
                        return ctx.err(format!("cannot compare {} with {}", ta, tb));
                    }
                    Ok(Type::Bool)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if join_numeric(ta, tb).is_none() {
                        return ctx.err("comparison on non-numeric values");
                    }
                    Ok(Type::Bool)
                }
                BinOp::Union | BinOp::Inter | BinOp::Diff => {
                    if !ta.is_set() || !tb.is_set() {
                        return ctx.err("set operation on non-set values");
                    }
                    // The polymorphic empty set adapts to the other side.
                    Ok(if ta == tb {
                        ta
                    } else if matches!(**a, Expr::EmptySet(_)) {
                        tb
                    } else {
                        ta
                    })
                }
                BinOp::Member => {
                    if !tb.is_set() {
                        return ctx.err("'in' requires a set on the right");
                    }
                    let elem = tb.elem().unwrap();
                    if !compatible(elem, ta) {
                        return ctx.err(format!("member of type {} in {}", ta, tb));
                    }
                    Ok(Type::Bool)
                }
                BinOp::Subset => {
                    if !ta.is_set() || !tb.is_set() {
                        return ctx.err("'subset' requires sets");
                    }
                    Ok(Type::Bool)
                }
            }
        }
        Expr::Ite(c, t, f) => {
            expect_type(ctx, c, Type::Bool)?;
            let tt = infer(ctx, t)?;
            let tf = infer(ctx, f)?;
            if compatible(tt, tf) {
                Ok(tt)
            } else if compatible(tf, tt) {
                Ok(tf)
            } else if let Some(j) = join_numeric(tt, tf) {
                Ok(j)
            } else {
                ctx.err(format!("ite branches have types {} and {}", tt, tf))
            }
        }
        Expr::Singleton(inner) => {
            let t = infer(ctx, inner)?;
            match t {
                Type::Loc => Ok(Type::SetLoc),
                Type::Int => Ok(Type::SetInt),
                other => ctx.err(format!("cannot form a set of {}", other)),
            }
        }
        Expr::App(_, args) => {
            for a in args {
                infer(ctx, a)?;
            }
            Ok(Type::Bool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), TypeError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn well_typed_program() {
        let src = r#"
            field next: Loc;
            field key: Int;
            field ghost keys: Set<Int>;
            field ghost hslist: Set<Loc>;

            procedure insert(x: Loc, k: Int) returns (r: Loc)
              requires x != nil && k in x.keys;
              ensures r.keys == union(old(x.keys), {k});
              modifies x.hslist;
            {
              var y: Loc;
              y := x.next;
              Mut(x, key, k);
              if (y == nil) { r := x; } else { r := y; }
            }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn unknown_variable_rejected() {
        let src = r#"
            field next: Loc;
            procedure p(x: Loc) { y := x; }
        "#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn unknown_field_rejected() {
        let src = r#"
            field next: Loc;
            procedure p(x: Loc) returns (y: Loc) { y := x.prev; }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let src = r#"
            field key: Int;
            procedure p(x: Loc) returns (y: Loc) { y := x.key; }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn br_is_implicitly_scoped() {
        let src = r#"
            field next: Loc;
            procedure p(x: Loc)
              requires Br == {};
              ensures Br == {};
            {
            }
        "#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn bad_call_arity_rejected() {
        let src = r#"
            field next: Loc;
            procedure callee(a: Loc, b: Int) returns (c: Loc);
            procedure caller(x: Loc) returns (y: Loc) {
              call y := callee(x);
            }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn mut_macro_checks_field_type() {
        let src = r#"
            field key: Int;
            procedure p(x: Loc, y: Loc) { Mut(x, key, y); }
        "#;
        assert!(check(src).is_err());
        let ok = r#"
            field key: Int;
            procedure p(x: Loc, k: Int) { Mut(x, key, k); }
        "#;
        assert!(check(ok).is_ok());
    }

    #[test]
    fn int_coerces_to_real() {
        let src = r#"
            field ghost rank: Real;
            procedure p(x: Loc, y: Loc) {
              Mut(x, rank, (x.rank + y.rank) / 2);
              Mut(y, rank, x.rank + 1);
            }
        "#;
        assert!(check(src).is_ok());
    }
}
