//! Cross-checks on generated verification conditions.
//!
//! The paper (§5.1) cross-checks that the SMT queries Boogie emits for the
//! FWYB benchmarks are quantifier-free and stay inside decidable theories.
//! This module reproduces that check for our own VCs.

use ids_smt::{Op, TermId, TermManager};

/// Which theory features a set of verification conditions uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoryProfile {
    /// Contains a universal quantifier.
    pub quantifiers: bool,
    /// Uses uninterpreted functions / field maps.
    pub uninterpreted: bool,
    /// Uses linear integer/rational arithmetic.
    pub arithmetic: bool,
    /// Uses array `store`/`select`.
    pub arrays: bool,
    /// Uses parameterized (pointwise) map updates.
    pub pointwise_updates: bool,
    /// Uses finite sets.
    pub sets: bool,
}

impl TheoryProfile {
    /// True if the profile is inside the decidable quantifier-free fragment
    /// used by the FWYB methodology.
    pub fn is_decidable_fragment(&self) -> bool {
        !self.quantifiers
    }
}

/// Computes the theory profile of a set of formulas.
pub fn theory_profile(tm: &TermManager, roots: &[TermId]) -> TheoryProfile {
    let mut p = TheoryProfile::default();
    for t in tm.subterms(roots) {
        match &tm.term(t).op {
            Op::Forall(_) => p.quantifiers = true,
            Op::App(_) => p.uninterpreted = true,
            Op::Add | Op::Sub | Op::Neg | Op::MulConst(_) | Op::Le | Op::Lt => p.arithmetic = true,
            Op::Select | Op::Store => p.arrays = true,
            Op::MapIte => p.pointwise_updates = true,
            Op::Union
            | Op::Inter
            | Op::Diff
            | Op::Member
            | Op::Subset
            | Op::Singleton
            | Op::EmptySet(_) => p.sets = true,
            _ => {}
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoding, VcGen};
    use ids_ivl::parse_program;
    use ids_smt::TermManager;

    #[test]
    fn profiles_distinguish_encodings() {
        let program = parse_program(
            r#"
            field key: Int;
            procedure callee(a: Loc)
              ensures a.key == 1;
              modifies {a};
            procedure m(x: Loc)
              requires x != nil;
              ensures x.key == 1;
            {
              call callee(x);
            }
            "#,
        )
        .unwrap();
        let mut tm = TermManager::new();
        let dec: Vec<_> = VcGen::new(&program, Encoding::Decidable)
            .vcs_for(&mut tm, "m")
            .unwrap()
            .iter()
            .map(|v| v.formula)
            .collect();
        let pd = theory_profile(&tm, &dec);
        assert!(pd.is_decidable_fragment());
        assert!(pd.arrays && pd.pointwise_updates);

        let quant: Vec<_> = VcGen::new(&program, Encoding::Quantified)
            .vcs_for(&mut tm, "m")
            .unwrap()
            .iter()
            .map(|v| v.formula)
            .collect();
        let pq = theory_profile(&tm, &quant);
        assert!(!pq.is_decidable_fragment());
    }
}
