//! Encoding of IVL expressions into SMT terms over the heap-as-maps model.

use std::collections::BTreeMap;

use ids_ivl::{BinOp, Expr, Program, Type, UnOp};
use ids_smt::{Rat, Sort, TermId, TermManager};

use crate::VcError;

/// Maps an IVL type to an SMT sort.
pub fn sort_of_type(t: Type) -> Sort {
    match t {
        Type::Bool => Sort::Bool,
        Type::Int => Sort::Int,
        Type::Real => Sort::Real,
        Type::Loc => Sort::Loc,
        Type::SetLoc => Sort::set_of(Sort::Loc),
        Type::SetInt => Sort::set_of(Sort::Int),
    }
}

/// The default value stored in a freshly allocated object's field.
pub fn default_value(tm: &mut TermManager, t: Type) -> TermId {
    match t {
        Type::Bool => tm.fls(),
        Type::Int => tm.int(0),
        Type::Real => tm.real(Rat::ZERO),
        Type::Loc => tm.var("nil", Sort::Loc),
        Type::SetLoc => tm.empty_set(Sort::Loc),
        Type::SetInt => tm.empty_set(Sort::Int),
    }
}

/// A symbolic state: the current SMT term for every program variable and for
/// every field map.
///
/// The maps are `BTreeMap`s on purpose: symbolic execution iterates over them
/// (call framing, branch joins), and a deterministic iteration order makes VC
/// generation reproducible run to run — which the driver's persistent VC cache
/// relies on (the structural hash of a VC must not depend on the order fresh
/// variables were numbered in).
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Program variables (including the implicit ghost sets `Br`, `Alloc`).
    pub vars: BTreeMap<String, TermId>,
    /// Field maps, keyed by field name.
    pub fields: BTreeMap<String, TermId>,
}

/// Encodes an expression in the given state.
///
/// `old_env` is the state `old(..)` refers to. Side assumptions produced by
/// the allocation-set modelling of Appendix A.3 (dereferenced locations are
/// allocated) are appended to `side`.
pub fn encode_expr(
    tm: &mut TermManager,
    program: &Program,
    env: &Env,
    old_env: &Env,
    e: &Expr,
    side: &mut Vec<TermId>,
) -> Result<TermId, VcError> {
    enc(tm, program, env, old_env, e, side)
}

fn err<T>(msg: impl Into<String>) -> Result<T, VcError> {
    Err(VcError::Encoding(msg.into()))
}

fn enc(
    tm: &mut TermManager,
    program: &Program,
    env: &Env,
    old_env: &Env,
    e: &Expr,
    side: &mut Vec<TermId>,
) -> Result<TermId, VcError> {
    match e {
        Expr::BoolLit(true) => Ok(tm.tru()),
        Expr::BoolLit(false) => Ok(tm.fls()),
        Expr::IntLit(n) => Ok(tm.int(*n)),
        Expr::RealLit(n, d) => Ok(tm.real(Rat::new(*n, *d))),
        Expr::Nil => Ok(tm.var("nil", Sort::Loc)),
        Expr::EmptySet(Type::SetInt) => Ok(tm.empty_set(Sort::Int)),
        Expr::EmptySet(_) => Ok(tm.empty_set(Sort::Loc)),
        Expr::Var(name) => env
            .vars
            .get(name)
            .copied()
            .ok_or_else(|| VcError::Encoding(format!("unbound variable '{}'", name))),
        Expr::Field(obj, field) => {
            let o = enc(tm, program, env, old_env, obj, side)?;
            let decl = program
                .field(field)
                .ok_or_else(|| VcError::Encoding(format!("unknown field '{}'", field)))?;
            let map = env
                .fields
                .get(field)
                .copied()
                .ok_or_else(|| VcError::Encoding(format!("field map '{}' missing", field)))?;
            let sel = tm.select(map, o);
            // Appendix A.3: dereferenced location-valued (or set-of-location
            // valued) fields stay inside the allocation set.
            if let Some(&alloc) = env.vars.get("Alloc") {
                match decl.ty {
                    Type::Loc => {
                        let nil = tm.var("nil", Sort::Loc);
                        let is_nil = tm.eq(sel, nil);
                        let in_alloc = tm.member(sel, alloc);
                        let a = tm.or2(is_nil, in_alloc);
                        side.push(a);
                    }
                    Type::SetLoc => {
                        let a = tm.subset(sel, alloc);
                        side.push(a);
                    }
                    _ => {}
                }
            }
            Ok(sel)
        }
        Expr::Old(inner) => enc(tm, program, old_env, old_env, inner, side),
        Expr::Unary(UnOp::Not, inner) => {
            let i = enc(tm, program, env, old_env, inner, side)?;
            Ok(tm.not(i))
        }
        Expr::Unary(UnOp::Neg, inner) => {
            let i = enc(tm, program, env, old_env, inner, side)?;
            Ok(tm.neg(i))
        }
        Expr::Binary(op, a, b) => {
            // The polymorphic empty set `{}` adapts its element sort to the
            // other operand.
            let (ea, eb) = coerce_empty(a, b);
            let ta = enc(tm, program, env, old_env, &ea, side)?;
            let tb = enc(tm, program, env, old_env, &eb, side)?;
            match op {
                BinOp::Add => Ok(tm.add(ta, tb)),
                BinOp::Sub => Ok(tm.sub(ta, tb)),
                BinOp::Div => match &**b {
                    Expr::IntLit(n) if *n != 0 => Ok(tm.mul_const(Rat::new(1, *n), ta)),
                    _ => err("division must be by a non-zero integer literal"),
                },
                BinOp::And => Ok(tm.and2(ta, tb)),
                BinOp::Or => Ok(tm.or2(ta, tb)),
                BinOp::Implies => Ok(tm.implies(ta, tb)),
                BinOp::Iff => Ok(tm.iff(ta, tb)),
                BinOp::Eq => Ok(tm.eq(ta, tb)),
                BinOp::Ne => Ok(tm.neq(ta, tb)),
                BinOp::Lt => Ok(tm.lt(ta, tb)),
                BinOp::Le => Ok(tm.le(ta, tb)),
                BinOp::Gt => Ok(tm.gt(ta, tb)),
                BinOp::Ge => Ok(tm.ge(ta, tb)),
                BinOp::Union => Ok(tm.union(ta, tb)),
                BinOp::Inter => Ok(tm.inter(ta, tb)),
                BinOp::Diff => Ok(tm.diff(ta, tb)),
                BinOp::Member => Ok(tm.member(ta, tb)),
                BinOp::Subset => Ok(tm.subset(ta, tb)),
            }
        }
        Expr::Ite(c, t, f) => {
            let ec = enc(tm, program, env, old_env, c, side)?;
            let et = enc(tm, program, env, old_env, t, side)?;
            let ef = enc(tm, program, env, old_env, f, side)?;
            Ok(tm.ite(ec, et, ef))
        }
        Expr::Singleton(inner) => {
            let i = enc(tm, program, env, old_env, inner, side)?;
            Ok(tm.singleton(i))
        }
        Expr::App(name, args) => {
            let mut ts = Vec::new();
            for a in args {
                ts.push(enc(tm, program, env, old_env, a, side)?);
            }
            Ok(tm.app(name, ts, Sort::Bool))
        }
    }
}

/// If exactly one of the two operands is the polymorphic empty-set literal and
/// the other is (syntactically) of a known integer-set type, rewrite the empty
/// set literal to the matching element sort. This keeps the SMT encoding
/// well-sorted without burdening the surface programs.
fn coerce_empty(a: &Expr, b: &Expr) -> (Expr, Expr) {
    fn is_int_setish(e: &Expr) -> bool {
        match e {
            Expr::Singleton(inner) => matches!(**inner, Expr::IntLit(_)),
            Expr::EmptySet(Type::SetInt) => true,
            Expr::Field(_, name) => name.contains("keys"),
            Expr::Binary(BinOp::Union | BinOp::Inter | BinOp::Diff, x, y) => {
                is_int_setish(x) || is_int_setish(y)
            }
            Expr::Old(inner) => is_int_setish(inner),
            _ => false,
        }
    }
    let mut ea = a.clone();
    let mut eb = b.clone();
    if matches!(ea, Expr::EmptySet(_)) && is_int_setish(b) {
        ea = Expr::EmptySet(Type::SetInt);
    }
    if matches!(eb, Expr::EmptySet(_)) && is_int_setish(a) {
        eb = Expr::EmptySet(Type::SetInt);
    }
    (ea, eb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_expr;

    fn setup() -> (TermManager, Program, Env) {
        let program = ids_ivl::parse_program(
            r#"
            field next: Loc;
            field key: Int;
            field ghost keys: Set<Int>;
            field ghost hslist: Set<Loc>;
            procedure dummy(x: Loc);
            "#,
        )
        .unwrap();
        let mut tm = TermManager::new();
        let mut env = Env::default();
        let x = tm.var("x", Sort::Loc);
        env.vars.insert("x".into(), x);
        let alloc = tm.var("Alloc", Sort::set_of(Sort::Loc));
        env.vars.insert("Alloc".into(), alloc);
        for f in &program.fields {
            let sort = Sort::array_of(Sort::Loc, sort_of_type(f.ty));
            let m = tm.var(&format!("fld_{}", f.name), sort);
            env.fields.insert(f.name.clone(), m);
        }
        (tm, program, env)
    }

    #[test]
    fn encodes_field_chain() {
        let (mut tm, program, env) = setup();
        let e = parse_expr("x.next.key").unwrap();
        let mut side = Vec::new();
        let t = encode_expr(&mut tm, &program, &env, &env, &e, &mut side).unwrap();
        assert_eq!(tm.sort(t), &Sort::Int);
        // The dereference of the Loc-valued field produced an allocation-set
        // side assumption.
        assert!(!side.is_empty());
    }

    #[test]
    fn encodes_set_expression() {
        let (mut tm, program, env) = setup();
        let e = parse_expr("x.hslist == union({x}, x.next.hslist)").unwrap();
        let mut side = Vec::new();
        let t = encode_expr(&mut tm, &program, &env, &env, &e, &mut side).unwrap();
        assert_eq!(tm.sort(t), &Sort::Bool);
    }

    #[test]
    fn empty_set_coerces_to_int_sets() {
        let (mut tm, program, env) = setup();
        let e = parse_expr("x.keys == {}").unwrap();
        let mut side = Vec::new();
        let t = encode_expr(&mut tm, &program, &env, &env, &e, &mut side).unwrap();
        // Both sides must have the Set<Int> sort under the hood.
        let term = tm.term(t).clone();
        let rhs = term.args[1];
        assert_eq!(tm.sort(rhs), &Sort::set_of(Sort::Int));
    }

    #[test]
    fn unknown_variable_is_reported() {
        let (mut tm, program, env) = setup();
        let e = parse_expr("y.key").unwrap();
        let mut side = Vec::new();
        assert!(encode_expr(&mut tm, &program, &env, &env, &e, &mut side).is_err());
    }

    #[test]
    fn division_by_literal_only() {
        let (mut tm, program, env) = setup();
        let ok = parse_expr("(x.key + 1) / 2").unwrap();
        let mut side = Vec::new();
        assert!(encode_expr(&mut tm, &program, &env, &env, &ok, &mut side).is_ok());
        let bad = parse_expr("x.key / x.key").unwrap();
        assert!(encode_expr(&mut tm, &program, &env, &env, &bad, &mut side).is_err());
    }
}
