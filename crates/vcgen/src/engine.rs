//! The VC generation engine: symbolic execution of FWYB-expanded procedures
//! with loop cutting, call summarization and per-assert VC splitting.

use ids_ivl::{Block, Expr, Lhs, Procedure, Program, Stmt, Type};
use ids_smt::{Sort, TermId, TermManager};

use crate::encode::{default_value, encode_expr, sort_of_type, Env};
use crate::{Encoding, MethodVcs, Vc, VcError};

/// Generates the verification conditions of one procedure, together with the
/// shared hypothesis list (see [`MethodVcs`]).
pub fn generate(
    tm: &mut TermManager,
    program: &Program,
    proc: &Procedure,
    encoding: Encoding,
) -> Result<MethodVcs, VcError> {
    let mut ctx = Ctx {
        program,
        encoding,
        assumptions: Vec::new(),
        vcs: Vec::new(),
        proc_name: proc.name.clone(),
    };

    // ------------------------------------------------------------ entry env
    let mut env = Env::default();
    let nil = tm.var("nil", Sort::Loc);
    let alloc = tm.fresh_var("Alloc", Sort::set_of(Sort::Loc));
    env.vars.insert("Alloc".into(), alloc);
    env.vars
        .insert("Br".into(), tm.fresh_var("Br", Sort::set_of(Sort::Loc)));
    env.vars
        .insert("Br2".into(), tm.fresh_var("Br2", Sort::set_of(Sort::Loc)));
    let nil_unalloc = {
        let m = tm.member(nil, alloc);
        tm.not(m)
    };
    ctx.assumptions.push(nil_unalloc);

    for f in program.fields.iter() {
        let sort = Sort::array_of(Sort::Loc, sort_of_type(f.ty));
        let map = tm.fresh_var(&format!("fld_{}", f.name), sort);
        env.fields.insert(f.name.clone(), map);
    }
    for p in proc.params.iter().chain(proc.returns.iter()) {
        let v = tm.fresh_var(&p.name, sort_of_type(p.ty));
        env.vars.insert(p.name.clone(), v);
        if p.ty == Type::Loc {
            // Parameters point into the allocated heap (Appendix A.3).
            let is_nil = tm.eq(v, nil);
            let in_alloc = tm.member(v, alloc);
            let a = tm.or2(is_nil, in_alloc);
            ctx.assumptions.push(a);
        }
        if p.ty == Type::SetLoc {
            let a = tm.subset(v, alloc);
            ctx.assumptions.push(a);
        }
    }
    // Locals are in scope for the whole body (Boogie-style flattened scope).
    let body = proc
        .body
        .clone()
        .ok_or_else(|| VcError::NoBody(proc.name.clone()))?;
    declare_locals(tm, &mut env, &body);

    let old_env = env.clone();

    // --------------------------------------------------------- preconditions
    let tru = tm.tru();
    for r in &proc.requires {
        let mut side = Vec::new();
        let t = encode_expr(tm, program, &env, &old_env, r, &mut side)?;
        ctx.assumptions.extend(side);
        // Split top-level conjunctions into individual hypotheses. The VC
        // formulas are unchanged — the antecedent `and` flattens nested
        // conjunctions, so prefix *content* at every VC is identical — but
        // the finer granularity widens the structure-common hypothesis
        // prelude: methods sharing leading requires conjuncts (`Br == {}`,
        // `x != nil`) now share them as positional hypotheses even when a
        // later conjunct diverges.
        match &tm.term(t).op {
            ids_smt::Op::And => {
                let conjuncts = tm.term(t).args.clone();
                ctx.assumptions.extend(conjuncts);
            }
            _ => ctx.assumptions.push(t),
        }
    }

    // ----------------------------------------------------------------- body
    let final_env = ctx.exec_block(tm, &body, env, tru, &old_env)?;

    // ------------------------------------------------------- postconditions
    ctx.check_ensures(tm, proc, &final_env, &old_env, tru, "at end of procedure")?;

    Ok(MethodVcs {
        hypotheses: ctx.assumptions,
        vcs: ctx.vcs,
    })
}

fn declare_locals(tm: &mut TermManager, env: &mut Env, block: &Block) {
    for s in &block.stmts {
        match s {
            Stmt::VarDecl { name, ty, .. } => {
                let v = tm.fresh_var(name, sort_of_type(*ty));
                env.vars.insert(name.clone(), v);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                declare_locals(tm, env, then_branch);
                declare_locals(tm, env, else_branch);
            }
            Stmt::While { body, .. } => declare_locals(tm, env, body),
            _ => {}
        }
    }
}

struct Ctx<'a> {
    program: &'a Program,
    encoding: Encoding,
    assumptions: Vec<TermId>,
    vcs: Vec<Vc>,
    proc_name: String,
}

impl<'a> Ctx<'a> {
    fn assume_guarded(&mut self, tm: &mut TermManager, guard: TermId, fact: TermId) {
        let t = tm.implies(guard, fact);
        self.assumptions.push(t);
    }

    fn emit_vc(&mut self, tm: &mut TermManager, guard: TermId, fact: TermId, description: String) {
        let n_hyps = self.assumptions.len();
        let mut antecedent = self.assumptions.clone();
        antecedent.push(guard);
        let ante = tm.and(antecedent);
        let formula = tm.implies(ante, fact);
        self.vcs.push(Vc {
            description,
            formula,
            n_hyps,
            guard,
            goal: fact,
        });
        // Once checked, the fact may be assumed for the rest of the procedure.
        self.assume_guarded(tm, guard, fact);
    }

    fn encode(
        &mut self,
        tm: &mut TermManager,
        env: &Env,
        old_env: &Env,
        guard: TermId,
        e: &Expr,
    ) -> Result<TermId, VcError> {
        let mut side = Vec::new();
        let t = encode_expr(tm, self.program, env, old_env, e, &mut side)?;
        for s in side {
            self.assume_guarded(tm, guard, s);
        }
        Ok(t)
    }

    fn check_ensures(
        &mut self,
        tm: &mut TermManager,
        proc: &Procedure,
        env: &Env,
        old_env: &Env,
        guard: TermId,
        where_: &str,
    ) -> Result<(), VcError> {
        for (i, e) in proc.ensures.iter().enumerate() {
            let t = self.encode(tm, env, old_env, guard, e)?;
            self.emit_vc(
                tm,
                guard,
                t,
                format!("{}::ensures#{} {}", self.proc_name, i + 1, where_),
            );
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        tm: &mut TermManager,
        block: &Block,
        mut env: Env,
        guard: TermId,
        old_env: &Env,
    ) -> Result<Env, VcError> {
        for s in &block.stmts {
            env = self.exec_stmt(tm, s, env, guard, old_env)?;
        }
        Ok(env)
    }

    fn exec_stmt(
        &mut self,
        tm: &mut TermManager,
        stmt: &Stmt,
        mut env: Env,
        guard: TermId,
        old_env: &Env,
    ) -> Result<Env, VcError> {
        match stmt {
            Stmt::VarDecl { name, init, .. } => {
                if let Some(e) = init {
                    let t = self.encode(tm, &env, old_env, guard, e)?;
                    env.vars.insert(name.clone(), t);
                }
                Ok(env)
            }
            Stmt::Assign { lhs, rhs } => {
                let value = self.encode(tm, &env, old_env, guard, rhs)?;
                match lhs {
                    Lhs::Var(v) => {
                        if !env.vars.contains_key(v) {
                            return Err(VcError::Encoding(format!("unbound variable '{}'", v)));
                        }
                        env.vars.insert(v.clone(), value);
                    }
                    Lhs::Field(obj, field) => {
                        let o = env.vars.get(obj).copied().ok_or_else(|| {
                            VcError::Encoding(format!("unbound variable '{}'", obj))
                        })?;
                        let map = env.fields.get(field).copied().ok_or_else(|| {
                            VcError::Encoding(format!("unknown field '{}'", field))
                        })?;
                        let updated = tm.store(map, o, value);
                        env.fields.insert(field.clone(), updated);
                    }
                }
                Ok(env)
            }
            Stmt::Havoc { name } => {
                let sort = env
                    .vars
                    .get(name)
                    .map(|&t| tm.sort(t).clone())
                    .ok_or_else(|| VcError::Encoding(format!("unbound variable '{}'", name)))?;
                let fresh = tm.fresh_var(name, sort);
                env.vars.insert(name.clone(), fresh);
                Ok(env)
            }
            Stmt::Assume(e) => {
                let t = self.encode(tm, &env, old_env, guard, e)?;
                self.assume_guarded(tm, guard, t);
                Ok(env)
            }
            Stmt::Assert(e) => {
                let t = self.encode(tm, &env, old_env, guard, e)?;
                self.emit_vc(
                    tm,
                    guard,
                    t,
                    format!(
                        "{}::assert {}",
                        self.proc_name,
                        ids_ivl::printer::expr_to_string(e)
                    ),
                );
                Ok(env)
            }
            Stmt::Alloc { lhs } => {
                let alloc = env.vars["Alloc"];
                let nil = tm.var("nil", Sort::Loc);
                let fresh = tm.fresh_var(&format!("new_{}", lhs), Sort::Loc);
                let not_alloc = {
                    let m = tm.member(fresh, alloc);
                    tm.not(m)
                };
                let not_nil = tm.neq(fresh, nil);
                self.assume_guarded(tm, guard, not_alloc);
                self.assume_guarded(tm, guard, not_nil);
                // Default-initialize every field of the fresh object.
                for f in self.program.fields.clone() {
                    let map = env.fields[&f.name];
                    let dv = default_value(tm, f.ty);
                    let updated = tm.store(map, fresh, dv);
                    env.fields.insert(f.name.clone(), updated);
                }
                let single = tm.singleton(fresh);
                let grown = tm.union(alloc, single);
                env.vars.insert("Alloc".into(), grown);
                env.vars.insert(lhs.clone(), fresh);
                Ok(env)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.encode(tm, &env, old_env, guard, cond)?;
                let guard_then = tm.and2(guard, c);
                let nc = tm.not(c);
                let guard_else = tm.and2(guard, nc);
                let env_then =
                    self.exec_block(tm, then_branch, env.clone(), guard_then, old_env)?;
                let env_else =
                    self.exec_block(tm, else_branch, env.clone(), guard_else, old_env)?;
                Ok(merge_envs(tm, c, &env_then, &env_else))
            }
            Stmt::While {
                cond,
                invariants,
                body,
                ..
            } => {
                // 1. Invariants hold on entry.
                for (i, inv) in invariants.iter().enumerate() {
                    let t = self.encode(tm, &env, old_env, guard, inv)?;
                    self.emit_vc(
                        tm,
                        guard,
                        t,
                        format!("{}::loop invariant #{} on entry", self.proc_name, i + 1),
                    );
                }
                // 2. Havoc the loop targets (arbitrary iteration).
                let targets = loop_targets(self.program, body);
                for v in &targets.vars {
                    if let Some(&old) = env.vars.get(v) {
                        let sort = tm.sort(old).clone();
                        let fresh = tm.fresh_var(&format!("loop_{}", v), sort);
                        env.vars.insert(v.clone(), fresh);
                    }
                }
                for f in &targets.fields {
                    if let Some(&old) = env.fields.get(f) {
                        let sort = tm.sort(old).clone();
                        let fresh = tm.fresh_var(&format!("loop_fld_{}", f), sort);
                        env.fields.insert(f.clone(), fresh);
                    }
                }
                // 3. Assume the invariants for the arbitrary iteration.
                for inv in invariants {
                    let t = self.encode(tm, &env, old_env, guard, inv)?;
                    self.assume_guarded(tm, guard, t);
                }
                // 4. Body path: assume the condition, run the body, re-check
                //    the invariants. This path does not continue past the loop.
                let c = self.encode(tm, &env, old_env, guard, cond)?;
                let guard_body = tm.and2(guard, c);
                let body_env = self.exec_block(tm, body, env.clone(), guard_body, old_env)?;
                for (i, inv) in invariants.iter().enumerate() {
                    let t = self.encode(tm, &body_env, old_env, guard_body, inv)?;
                    self.emit_vc(
                        tm,
                        guard_body,
                        t,
                        format!("{}::loop invariant #{} preserved", self.proc_name, i + 1),
                    );
                }
                // 5. Continue after the loop with the negated condition.
                let nc = tm.not(c);
                self.assume_guarded(tm, guard, nc);
                Ok(env)
            }
            Stmt::Call { lhs, proc, args } => {
                self.exec_call(tm, lhs, proc, args, env, guard, old_env)
            }
            Stmt::Return => {
                // Check the postconditions and make the rest of this path
                // unreachable.
                let proc = self
                    .program
                    .procedure(&self.proc_name)
                    .expect("current procedure")
                    .clone();
                self.check_ensures(tm, &proc, &env, old_env, guard, "at return")?;
                let f = tm.fls();
                self.assume_guarded(tm, guard, f);
                Ok(env)
            }
            Stmt::Macro { name, .. } => Err(VcError::UnexpandedMacro(name.clone())),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_call(
        &mut self,
        tm: &mut TermManager,
        lhs: &[String],
        callee_name: &str,
        args: &[Expr],
        mut env: Env,
        guard: TermId,
        old_env: &Env,
    ) -> Result<Env, VcError> {
        let callee = self
            .program
            .procedure(callee_name)
            .ok_or_else(|| VcError::UnknownProcedure(callee_name.to_string()))?
            .clone();
        if callee.params.len() != args.len() {
            return Err(VcError::Encoding(format!(
                "call to '{}' with {} arguments, expected {}",
                callee_name,
                args.len(),
                callee.params.len()
            )));
        }
        // Bind actuals (evaluated in the caller's pre-call state).
        let mut pre_env = env.clone();
        for (param, arg) in callee.params.iter().zip(args.iter()) {
            let t = self.encode(tm, &env, old_env, guard, arg)?;
            pre_env.vars.insert(param.name.clone(), t);
        }
        // Check the callee's preconditions.
        for (i, r) in callee.requires.iter().enumerate() {
            let t = self.encode(tm, &pre_env, &pre_env, guard, r)?;
            self.emit_vc(
                tm,
                guard,
                t,
                format!(
                    "{}::call {} precondition #{}",
                    self.proc_name,
                    callee_name,
                    i + 1
                ),
            );
        }
        // The modified heaplet, evaluated in the pre-call state.
        let modset = match &callee.modifies {
            Some(m) => self.encode(tm, &pre_env, &pre_env, guard, m)?,
            None => tm.empty_set(Sort::Loc),
        };
        // Havoc the heap on the modified objects.
        let field_names: Vec<String> = env.fields.keys().cloned().collect();
        for f in field_names {
            let old_map = env.fields[&f];
            let sort = tm.sort(old_map).clone();
            let havoc = tm.fresh_var(&format!("call_{}_{}", callee_name, f), sort.clone());
            let new_map = match self.encoding {
                Encoding::Decidable => tm.map_ite(modset, havoc, old_map),
                Encoding::Quantified => {
                    // new_map is unconstrained except outside the mod set.
                    let idx_sort = Sort::Loc;
                    let bound = tm.var("frame_i", idx_sort.clone());
                    let in_mod = tm.member(bound, modset);
                    let not_in = tm.not(in_mod);
                    let sel_new = tm.select(havoc, bound);
                    let sel_old = tm.select(old_map, bound);
                    let eq = tm.eq(sel_new, sel_old);
                    let body = tm.implies(not_in, eq);
                    let frame = tm.forall(vec![("frame_i".into(), idx_sort)], body);
                    self.assume_guarded(tm, guard, frame);
                    havoc
                }
            };
            env.fields.insert(f, new_map);
        }
        // The callee may allocate: the allocation set can only grow.
        let alloc_old = env.vars["Alloc"];
        let alloc_new = tm.fresh_var("Alloc", Sort::set_of(Sort::Loc));
        match self.encoding {
            Encoding::Decidable => {
                let grow = tm.subset(alloc_old, alloc_new);
                self.assume_guarded(tm, guard, grow);
            }
            Encoding::Quantified => {
                let bound = tm.var("alloc_i", Sort::Loc);
                let in_old = tm.member(bound, alloc_old);
                let in_new = tm.member(bound, alloc_new);
                let body = tm.implies(in_old, in_new);
                let frame = tm.forall(vec![("alloc_i".into(), Sort::Loc)], body);
                self.assume_guarded(tm, guard, frame);
            }
        }
        env.vars.insert("Alloc".into(), alloc_new);
        // The broken sets are threaded through every call: havoc them and let
        // the callee's postcondition pin them down.
        for br in ["Br", "Br2"] {
            let fresh = tm.fresh_var(br, Sort::set_of(Sort::Loc));
            env.vars.insert(br.to_string(), fresh);
        }
        // Bind the call results.
        let mut post_env = env.clone();
        for (param, arg_term) in callee.params.iter().zip(
            callee
                .params
                .iter()
                .map(|p| pre_env.vars[&p.name])
                .collect::<Vec<_>>(),
        ) {
            post_env.vars.insert(param.name.clone(), arg_term);
        }
        for (i, ret) in callee.returns.iter().enumerate() {
            let fresh = tm.fresh_var(&format!("ret_{}", ret.name), sort_of_type(ret.ty));
            post_env.vars.insert(ret.name.clone(), fresh);
            if let Some(target) = lhs.get(i) {
                env.vars.insert(target.clone(), fresh);
            }
        }
        // `old()` in the callee's postcondition refers to the pre-call state.
        let mut callee_old_env = pre_env.clone();
        callee_old_env.fields = pre_env.fields.clone();
        // Assume the callee's postconditions.
        for e in &callee.ensures {
            let t = self.encode(tm, &post_env, &callee_old_env, guard, e)?;
            self.assume_guarded(tm, guard, t);
        }
        Ok(env)
    }
}

/// The assignment targets of a loop body (variables and field maps that must
/// be havocked when cutting the loop).
#[derive(Default)]
struct LoopTargets {
    vars: Vec<String>,
    fields: Vec<String>,
}

fn loop_targets(program: &Program, body: &Block) -> LoopTargets {
    let mut t = LoopTargets::default();
    collect_targets(program, body, &mut t);
    t.vars.sort();
    t.vars.dedup();
    t.fields.sort();
    t.fields.dedup();
    t
}

fn collect_targets(program: &Program, block: &Block, out: &mut LoopTargets) {
    for s in &block.stmts {
        match s {
            Stmt::Assign { lhs, .. } => match lhs {
                Lhs::Var(v) => out.vars.push(v.clone()),
                Lhs::Field(_, f) => out.fields.push(f.clone()),
            },
            Stmt::VarDecl { name, init, .. } if init.is_some() => {
                out.vars.push(name.clone());
            }
            Stmt::Havoc { name } => out.vars.push(name.clone()),
            Stmt::Alloc { lhs } => {
                out.vars.push(lhs.clone());
                out.vars.push("Alloc".into());
                // Allocation writes default values into every field map.
                for f in &program.fields {
                    out.fields.push(f.name.clone());
                }
            }
            Stmt::Call { lhs, .. } => {
                out.vars.extend(lhs.iter().cloned());
                out.vars.push("Alloc".into());
                out.vars.push("Br".into());
                out.vars.push("Br2".into());
                for f in &program.fields {
                    out.fields.push(f.name.clone());
                }
            }
            Stmt::Macro { name, args } => {
                // Conservative: macros that mutate state touch the broken set
                // and (for Mut/NewObj) a field / fresh object.
                out.vars.push("Br".into());
                out.vars.push("Br2".into());
                if name == "Mut" {
                    if let Some(Expr::Var(f)) = args.get(1) {
                        out.fields.push(f.clone());
                    }
                }
                if name == "NewObj" {
                    if let Some(Expr::Var(v)) = args.first() {
                        out.vars.push(v.clone());
                    }
                    out.vars.push("Alloc".into());
                    for f in &program.fields {
                        out.fields.push(f.name.clone());
                    }
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_targets(program, then_branch, out);
                collect_targets(program, else_branch, out);
            }
            Stmt::While { body, .. } => collect_targets(program, body, out),
            _ => {}
        }
    }
}

fn merge_envs(tm: &mut TermManager, cond: TermId, then_env: &Env, else_env: &Env) -> Env {
    let mut merged = Env::default();
    for (k, &tv) in &then_env.vars {
        let ev = else_env.vars.get(k).copied().unwrap_or(tv);
        merged
            .vars
            .insert(k.clone(), if tv == ev { tv } else { tm.ite(cond, tv, ev) });
    }
    for (k, &ev) in &else_env.vars {
        merged.vars.entry(k.clone()).or_insert(ev);
    }
    for (k, &tv) in &then_env.fields {
        let ev = else_env.fields.get(k).copied().unwrap_or(tv);
        merged
            .fields
            .insert(k.clone(), if tv == ev { tv } else { tm.ite(cond, tv, ev) });
    }
    for (k, &ev) in &else_env.fields {
        merged.fields.entry(k.clone()).or_insert(ev);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_program;

    #[test]
    fn one_vc_per_assert_and_postcondition() {
        let program = parse_program(
            r#"
            field key: Int;
            procedure m(x: Loc)
              ensures true;
            {
              assert x == x;
              assert x.key == x.key;
            }
            "#,
        )
        .unwrap();
        let mut tm = TermManager::new();
        let proc = program.procedure("m").unwrap();
        let generated = generate(&mut tm, &program, proc, Encoding::Decidable).unwrap();
        assert_eq!(generated.vcs.len(), 3);
        // The hypothesis split reconstructs each VC formula exactly.
        for vc in &generated.vcs {
            let mut ante = generated.hypotheses[..vc.n_hyps].to_vec();
            ante.push(vc.guard);
            let conj = tm.and(ante);
            let rebuilt = tm.implies(conj, vc.goal);
            assert_eq!(rebuilt, vc.formula);
        }
        // Hypothesis prefixes are monotone in VC order.
        for w in generated.vcs.windows(2) {
            assert!(w[0].n_hyps <= w[1].n_hyps);
        }
    }

    #[test]
    fn unexpanded_macro_is_an_error() {
        let program = parse_program(
            r#"
            field next: Loc;
            procedure m(x: Loc, y: Loc)
            {
              Mut(x, next, y);
            }
            "#,
        )
        .unwrap();
        let mut tm = TermManager::new();
        let proc = program.procedure("m").unwrap();
        let err = generate(&mut tm, &program, proc, Encoding::Decidable).unwrap_err();
        assert!(matches!(err, VcError::UnexpandedMacro(_)));
    }

    #[test]
    fn decidable_vcs_are_quantifier_free() {
        let program = parse_program(
            r#"
            field key: Int;
            procedure callee(a: Loc)
              ensures a.key == 1;
              modifies {a};
            procedure m(x: Loc)
              requires x != nil;
              ensures x.key == 1;
            {
              call callee(x);
            }
            "#,
        )
        .unwrap();
        let mut tm = TermManager::new();
        let proc = program.procedure("m").unwrap();
        let vcs = generate(&mut tm, &program, proc, Encoding::Decidable)
            .unwrap()
            .vcs;
        for vc in &vcs {
            assert!(ids_smt::smtlib::is_quantifier_free(&tm, &[vc.formula]));
        }
        let vcs_q = generate(&mut tm, &program, proc, Encoding::Quantified)
            .unwrap()
            .vcs;
        let any_quantified = vcs_q
            .iter()
            .any(|vc| !ids_smt::smtlib::is_quantifier_free(&tm, &[vc.formula]));
        assert!(any_quantified);
    }
}
