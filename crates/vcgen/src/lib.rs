//! `ids-vcgen` — verification-condition generation for the IVL.
//!
//! This crate plays the role Boogie's VC generator plays in the paper: it
//! turns an (FWYB-expanded) IVL procedure into a set of logical validity
//! queries over the theories supported by [`ids_smt`].
//!
//! The heap is modelled exactly as described in §3.7 / Appendix A.3 of the
//! paper:
//!
//! * every field and ghost monadic map `f` becomes a map variable
//!   `Array(Loc, T)`; reads are `select`, writes are `store`;
//! * allocation is modelled with a ghost set `Alloc`: fresh objects are
//!   assumed outside `Alloc` (and `!= nil`), then added; reachable locations
//!   are assumed inside `Alloc`;
//! * heap change across procedure calls is framed with the callee's
//!   `modifies` set. In the **decidable encoding** the new map is the
//!   pointwise update `MapIte(mod, havoc, old)` (a parameterized map update of
//!   the generalized array theory); in the **quantified encoding** (used only
//!   to reproduce the paper's RQ3 comparison against Dafny) the frame is a
//!   universally quantified formula.
//!
//! Loops are cut at invariants, calls are replaced by their contracts, and
//! the body is symbolically executed with if-join merging (`ite` on the
//! changed state), producing **one verification condition per `assert`** — the
//! same "split on every assert" discipline the paper uses (max-VC-splits in
//! Boogie).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod engine;
pub mod qfcheck;

use ids_ivl::Program;
use ids_smt::{
    structural_hash, IncrementalSolver, SatResult, Solver, SolverConfig, SolverProfile,
    SolverStats, TermId, TermManager,
};

pub use encode::sort_of_type;
pub use qfcheck::{theory_profile, TheoryProfile};

/// The solver configuration matching an encoding mode (default heuristics
/// profile).
pub fn solver_config(encoding: Encoding) -> SolverConfig {
    solver_config_for(encoding, SolverProfile::default())
}

/// The solver configuration matching an encoding mode and a heuristics
/// profile. The profile never affects verdicts (or VC cache keys) — only the
/// search heuristics of the SAT core and the simplex.
pub fn solver_config_for(encoding: Encoding, profile: SolverProfile) -> SolverConfig {
    let base = SolverConfig::with_profile(profile);
    match encoding {
        Encoding::Decidable => base,
        Encoding::Quantified => SolverConfig {
            allow_quantifiers: true,
            ..base
        },
    }
}

/// Checks one VC formula for validity with a fresh solver (default profile).
///
/// This is the single-query building block the batch driver schedules across
/// worker threads; [`VcGen::verify`] is the sequential loop over it. Returns
/// the solver verdict ([`SatResult::Sat`] means *valid*, the semantics of
/// [`ids_smt::Solver::check_valid`]) together with the solver statistics of
/// the query.
pub fn check_formula(
    tm: &mut TermManager,
    formula: TermId,
    encoding: Encoding,
) -> (SatResult, SolverStats) {
    check_formula_with(tm, formula, encoding, SolverProfile::default())
}

/// [`check_formula`] under an explicit solver heuristics profile.
pub fn check_formula_with(
    tm: &mut TermManager,
    formula: TermId,
    encoding: Encoding,
    profile: SolverProfile,
) -> (SatResult, SolverStats) {
    let mut solver = Solver::with_config(solver_config_for(encoding, profile));
    let result = solver.check_valid(tm, formula);
    (result, solver.stats())
}

/// The hypothesis split of several methods of one data structure: a
/// *structure-common prelude* every method starts with, identified across the
/// methods' (independent) term managers by stable structural hashing
/// ([`ids_smt::hash`]), and a per-method residue.
///
/// Every method of a structure is verified against the same intrinsic local
/// conditions, so the leading hypotheses — `nil ∉ Alloc`, parameter typing,
/// shared `requires` conjuncts — are byte-identical across methods. A
/// structure-scoped warm solver pool asserts that prelude once, at structure
/// scope, instead of once per method.
///
/// The prelude is a *prefix* (hypothesis lists are positional and VC `i`
/// depends on exactly `hypotheses[..n_hyps]`), and it is capped at the
/// smallest first-VC `n_hyps` across the grouped methods: asserting a
/// hypothesis at structure scope before some VC's prefix reaches it would
/// add hypotheses that VC must not see, changing verdicts.
#[derive(Clone, Debug, Default)]
pub struct StructureVcs {
    /// Number of leading hypotheses shared by every grouped method.
    pub prelude_len: usize,
    /// Structural hashes of the shared prelude hypotheses, in order.
    pub prelude_hashes: Vec<u128>,
}

impl StructureVcs {
    /// Groups methods — each given as its term manager, hypothesis list and
    /// VC list — into the common-prelude split. Methods without VCs never
    /// assert hypotheses and are ignored; grouping zero (effective) methods
    /// yields an empty prelude.
    pub fn group(methods: &[(&TermManager, &[TermId], &[Vc])]) -> StructureVcs {
        let mut prelude: Option<Vec<u128>> = None;
        for (tm, hypotheses, vcs) in methods {
            let Some(first_vc) = vcs.first() else {
                continue;
            };
            // No hypothesis beyond the first VC's prefix may be asserted at
            // structure scope for this method.
            let cap = first_vc.n_hyps.min(hypotheses.len());
            let hashes: Vec<u128> = hypotheses[..cap]
                .iter()
                .map(|&h| structural_hash(tm, h))
                .collect();
            prelude = Some(match prelude {
                None => hashes,
                Some(mut common) => {
                    let lcp = common
                        .iter()
                        .zip(&hashes)
                        .take_while(|(a, b)| a == b)
                        .count();
                    common.truncate(lcp);
                    common
                }
            });
        }
        let prelude_hashes = prelude.unwrap_or_default();
        StructureVcs {
            prelude_len: prelude_hashes.len(),
            prelude_hashes,
        }
    }
}

/// The session-aware sibling of [`check_formula`]: one incremental solver
/// shared across all VCs of a method — or, with the structure-scope entry
/// points, across all methods of a structure.
///
/// In the per-method shape (PR 3), the session asserts the method's
/// hypothesis list once — incrementally, as successive VCs bring more of the
/// (monotone) prefix into scope — and checks each goal as `push; assert
/// guard; assert ¬goal; check; pop`, so the heap axioms, local-condition
/// definitions and typing hypotheses of the method are lowered and
/// clause-converted exactly once instead of once per VC.
///
/// In the structure-pool shape, [`VcSession::assert_prelude`] first pins the
/// structure-common hypothesis prelude (see [`StructureVcs`]) at structure
/// scope; each method is then bracketed by [`VcSession::begin_method`] /
/// [`VcSession::end_method`], which map to the solver's method scope: the
/// method's residue hypotheses and everything derived from them are retracted
/// and rolled back when the method ends, while the prelude's lowered state
/// survives for the next method.
///
/// Only the decidable encoding is supported (see [`VcSession::supports`]);
/// each method's VCs must be checked in generation order (their hypothesis
/// prefixes grow).
pub struct VcSession {
    solver: IncrementalSolver,
    /// How many leading hypotheses have been asserted so far (in the current
    /// method, for a structure pool).
    asserted: usize,
    /// How many leading hypotheses sit at structure scope.
    prelude: usize,
    /// Methods bracketed so far (structure pools credit the skipped prelude
    /// as reuse from the second method on).
    methods_begun: usize,
}

impl VcSession {
    /// True if the encoding can be discharged incrementally. The quantified
    /// (Dafny-style) RQ3 encoding performs whole-query quantifier
    /// instantiation and keeps using the fresh-solver path.
    pub fn supports(encoding: Encoding) -> bool {
        encoding == Encoding::Decidable
    }

    /// Creates a session for the decidable encoding (default profile).
    ///
    /// # Panics
    /// Panics if the encoding is unsupported — gate on
    /// [`VcSession::supports`] first.
    pub fn new(encoding: Encoding) -> VcSession {
        VcSession::with_profile(encoding, SolverProfile::default())
    }

    /// Creates a session under an explicit solver heuristics profile.
    ///
    /// # Panics
    /// Panics if the encoding is unsupported — gate on
    /// [`VcSession::supports`] first.
    pub fn with_profile(encoding: Encoding, profile: SolverProfile) -> VcSession {
        assert!(
            VcSession::supports(encoding),
            "incremental sessions require the decidable encoding"
        );
        VcSession {
            solver: IncrementalSolver::with_config(solver_config_for(encoding, profile)),
            asserted: 0,
            prelude: 0,
            methods_begun: 0,
        }
    }

    /// Asserts the structure-common hypothesis prelude at structure scope
    /// (permanently). Must be called at most once, before any
    /// [`VcSession::begin_method`]; the same leading `prelude_len` hypotheses
    /// must be shared — as identical term ids — by every method subsequently
    /// checked through this session.
    ///
    /// # Panics
    /// Panics if hypotheses were already asserted or a method is open.
    pub fn assert_prelude(
        &mut self,
        tm: &mut TermManager,
        hypotheses: &[TermId],
        prelude_len: usize,
    ) {
        assert!(
            self.asserted == 0 && self.prelude == 0 && self.methods_begun == 0,
            "assert_prelude must come first"
        );
        let mut obs_span = ids_obs::span("prelude");
        obs_span.note(|| format!("hypotheses={prelude_len}"));
        for (i, &h) in hypotheses[..prelude_len].iter().enumerate() {
            self.solver.assert_tracked(tm, h, i as u32);
        }
        self.prelude = prelude_len;
        self.asserted = prelude_len;
    }

    /// Opens the next method's scope of a structure pool. The method's
    /// residue hypotheses (asserted by [`VcSession::check_vc`] as its VCs
    /// need them) and all facts derived from them are retracted — and the
    /// solver's lowering/theory state rolled back — by the matching
    /// [`VcSession::end_method`]; the prelude asserted via
    /// [`VcSession::assert_prelude`] stays warm across methods.
    pub fn begin_method(&mut self) {
        ids_obs::instant("method_scope_begin");
        self.solver.push_method_scope();
        self.asserted = self.prelude;
        if self.methods_begun > 0 {
            // The prelude this method would otherwise re-lower was answered
            // from structure-scope state: make the reuse observable.
            self.solver.note_prelude_reuse(self.prelude as u64);
        }
        self.methods_begun += 1;
    }

    /// Closes the current method's scope (see [`VcSession::begin_method`]).
    pub fn end_method(&mut self) {
        ids_obs::instant("method_scope_end");
        self.solver.pop_method_scope();
        self.asserted = self.prelude;
    }

    /// Checks one VC against the session state. Returns the same
    /// validity-oriented verdict as [`check_formula`] ([`SatResult::Sat`]
    /// means *valid*) together with the per-query solver statistics.
    ///
    /// # Panics
    /// Panics if the VC's hypothesis prefix is shorter than what the session
    /// already asserted (VCs checked out of order).
    pub fn check_vc(
        &mut self,
        tm: &mut TermManager,
        hypotheses: &[TermId],
        vc: &Vc,
    ) -> (SatResult, SolverStats) {
        let (verdict, stats, _) = self.check_vc_sliced(tm, hypotheses, vc, None);
        (verdict, stats)
    }

    /// [`VcSession::check_vc`] with an optional *hypothesis-slice hint*: the
    /// positional hypothesis indices (a previously extracted unsat core) to
    /// try first. The check runs under the sliced hypothesis subset; a Valid
    /// verdict on the slice is sound as-is (dropping hypotheses only weakens
    /// the antecedent), while any other outcome is inconclusive and falls
    /// back to the full hypothesis set — so the returned verdict is always
    /// identical to the unhinted check's. The `slice_hits` /
    /// `slice_fallbacks` / `slice_dropped_hyps` counters of the returned
    /// stats record which way the check went.
    ///
    /// The third return value reports which of the VC's `n_hyps` positional
    /// hypotheses the final refutation used — `Some` (possibly empty: the
    /// goal needed no hypothesis at all) exactly when the verdict is Valid,
    /// `None` otherwise. Feeding it back as the hint of a later
    /// re-verification of the same VC is the cache-driven slicing loop.
    pub fn check_vc_sliced(
        &mut self,
        tm: &mut TermManager,
        hypotheses: &[TermId],
        vc: &Vc,
        hint: Option<&[u32]>,
    ) -> (SatResult, SolverStats, Option<Vec<u32>>) {
        assert!(
            vc.n_hyps >= self.asserted,
            "session VCs must be checked in generation order ({} hypotheses asserted, VC needs {})",
            self.asserted,
            vc.n_hyps
        );
        for (i, &h) in hypotheses[self.asserted..vc.n_hyps].iter().enumerate() {
            self.solver
                .assert_tracked(tm, h, (self.asserted + i) as u32);
        }
        self.asserted = vc.n_hyps;
        // A usable slice must be a strict subset of the VC's hypothesis
        // prefix; anything else (stale out-of-range tags, a full-prefix hint)
        // buys nothing and is checked the ordinary way.
        let slice: Option<Vec<u32>> = hint.and_then(|tags| {
            let mut s: Vec<u32> = tags
                .iter()
                .copied()
                .filter(|&t| (t as usize) < vc.n_hyps)
                .collect();
            s.sort_unstable();
            s.dedup();
            (s.len() < vc.n_hyps).then_some(s)
        });
        self.solver.push();
        self.solver.assert(tm, vc.guard);
        let neg_goal = tm.not(vc.goal);
        self.solver.assert(tm, neg_goal);
        let (result, stats) = match &slice {
            Some(s) => {
                let sliced = self.solver.check_selected(tm, Some(s));
                let mut stats = self.solver.stats();
                if sliced == SatResult::Unsat {
                    stats.slice_hits = 1;
                    stats.slice_dropped_hyps = (vc.n_hyps - s.len()) as u64;
                    if ids_obs::metrics_active() {
                        ids_obs::record_metric(
                            ids_obs::Metric::SliceDroppedHyps,
                            stats.slice_dropped_hyps,
                        );
                    }
                    (sliced, stats)
                } else {
                    // Sat/Unknown on a weakened antecedent proves nothing:
                    // re-check under the full hypothesis set inside the same
                    // goal scope.
                    let full = self.solver.check_selected(tm, None);
                    let mut full_stats = self.solver.stats();
                    full_stats.merge(&stats);
                    full_stats.slice_fallbacks = 1;
                    (full, full_stats)
                }
            }
            None => {
                let r = self.solver.check_selected(tm, None);
                (r, self.solver.stats())
            }
        };
        let core = (result == SatResult::Unsat).then(|| self.solver.last_core_tags().to_vec());
        self.solver.pop();
        let verdict = match result {
            SatResult::Unsat => SatResult::Sat, // valid
            SatResult::Sat => SatResult::Unsat, // counterexample exists
            SatResult::Unknown => SatResult::Unknown,
        };
        (verdict, stats, core)
    }
}

/// How frame conditions and allocation are encoded.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Encoding {
    /// Quantifier-free encoding via parameterized (pointwise) map updates —
    /// the decidable encoding the paper advocates.
    #[default]
    Decidable,
    /// Dafny-style encoding with universally quantified frame axioms — used
    /// only for the RQ3 performance comparison.
    Quantified,
}

/// One verification condition: a formula that must be *valid*.
///
/// `formula` is the self-contained implication used by the fresh-solver path
/// (and by content-addressed caching — it is the hashed artifact). The
/// remaining fields expose the same VC *split* for incremental sessions:
/// `formula == (hypotheses[..n_hyps] ∧ guard) ⇒ goal`, where the hypothesis
/// list lives in [`MethodVcs::hypotheses`] and is shared — as a growing
/// prefix — by every VC of the method.
#[derive(Clone, Debug)]
pub struct Vc {
    /// Human-readable description (which assert, which line of the pipeline).
    pub description: String,
    /// The formula to prove valid.
    pub formula: TermId,
    /// How many leading entries of the method's hypothesis list are in scope.
    pub n_hyps: usize,
    /// The path guard under which the goal must hold.
    pub guard: TermId,
    /// The goal fact itself.
    pub goal: TermId,
}

/// All verification conditions of one method, with the shared hypothesis
/// list factored out for incremental solving.
///
/// The hypothesis list is *monotone*: VC `i` depends on the prefix
/// `hypotheses[..vcs[i].n_hyps]`, and `n_hyps` never decreases along `vcs`
/// (symbolic execution only accumulates assumptions). An incremental session
/// therefore asserts each hypothesis exactly once, in order, and checks each
/// goal in its own push/pop scope.
#[derive(Clone, Debug)]
pub struct MethodVcs {
    /// The accumulated hypotheses, in assumption order.
    pub hypotheses: Vec<TermId>,
    /// The verification conditions, in generation order.
    pub vcs: Vec<Vc>,
}

/// Errors during VC generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VcError {
    /// The procedure does not exist in the program.
    UnknownProcedure(String),
    /// The procedure has no body (nothing to verify).
    NoBody(String),
    /// A FWYB macro statement was not expanded before VC generation.
    UnexpandedMacro(String),
    /// An expression could not be encoded.
    Encoding(String),
}

impl std::fmt::Display for VcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcError::UnknownProcedure(p) => write!(f, "unknown procedure '{}'", p),
            VcError::NoBody(p) => write!(f, "procedure '{}' has no body", p),
            VcError::UnexpandedMacro(m) => {
                write!(f, "macro '{}' must be expanded before VC generation", m)
            }
            VcError::Encoding(msg) => write!(f, "encoding error: {}", msg),
        }
    }
}

impl std::error::Error for VcError {}

/// The outcome of running the solver over a procedure's VCs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// All verification conditions are valid.
    Verified {
        /// Number of VCs discharged.
        vcs: usize,
    },
    /// Some verification condition has a counterexample.
    Refuted {
        /// Description of the first failing VC.
        failed: String,
    },
    /// The solver could not decide some VC (should not happen in the
    /// decidable encoding).
    Unknown {
        /// Description of the first undecided VC.
        undecided: String,
    },
}

impl VerifyOutcome {
    /// True if the outcome is [`VerifyOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, VerifyOutcome::Verified { .. })
    }
}

/// The VC generator facade.
///
/// # Example
/// ```
/// use ids_ivl::parse_program;
/// use ids_vcgen::{VcGen, Encoding};
/// use ids_smt::TermManager;
///
/// let program = parse_program(r#"
///     field key: Int;
///     procedure bump(x: Loc)
///       requires x != nil;
///       ensures x.key == old(x.key) + 1;
///     {
///       x.key := x.key + 1;
///     }
/// "#).unwrap();
/// let mut tm = TermManager::new();
/// let vcgen = VcGen::new(&program, Encoding::Decidable);
/// let vcs = vcgen.vcs_for(&mut tm, "bump").unwrap();
/// assert!(!vcs.is_empty());
/// ```
pub struct VcGen<'a> {
    program: &'a Program,
    encoding: Encoding,
}

impl<'a> VcGen<'a> {
    /// Creates a generator for the given program and encoding mode.
    pub fn new(program: &'a Program, encoding: Encoding) -> VcGen<'a> {
        VcGen { program, encoding }
    }

    /// The program this generator works on.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The encoding mode.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Generates the verification conditions of the named procedure.
    pub fn vcs_for(&self, tm: &mut TermManager, proc_name: &str) -> Result<Vec<Vc>, VcError> {
        Ok(self.method_vcs(tm, proc_name)?.vcs)
    }

    /// Generates the verification conditions of the named procedure together
    /// with the shared hypothesis list (the input of an incremental session).
    pub fn method_vcs(&self, tm: &mut TermManager, proc_name: &str) -> Result<MethodVcs, VcError> {
        let proc = self
            .program
            .procedure(proc_name)
            .ok_or_else(|| VcError::UnknownProcedure(proc_name.to_string()))?;
        if proc.body.is_none() {
            return Err(VcError::NoBody(proc_name.to_string()));
        }
        engine::generate(tm, self.program, proc, self.encoding)
    }

    /// Generates and discharges the VCs of a procedure with the SMT solver.
    ///
    /// Returns the outcome together with the number of solver calls. VCs are
    /// checked in order; the first refuted/undecided VC stops the run.
    pub fn verify(&self, tm: &mut TermManager, proc_name: &str) -> Result<VerifyOutcome, VcError> {
        let vcs = self.vcs_for(tm, proc_name)?;
        let debug = std::env::var("IDS_VC_DEBUG").is_ok();
        for vc in &vcs {
            let start = std::time::Instant::now();
            let (result, s) = check_formula(tm, vc.formula, self.encoding);
            if debug {
                eprintln!(
                    "[vc] {:>8.3}s sat={:.3}s theory={:.3}s rounds={} atoms={} clauses={} conflicts={} decisions={} :: {}",
                    start.elapsed().as_secs_f64(),
                    s.sat_time.as_secs_f64(),
                    s.theory_time.as_secs_f64(),
                    s.theory_rounds,
                    s.atoms,
                    s.initial_clauses,
                    s.sat_conflicts,
                    s.sat_decisions,
                    vc.description
                );
            }
            match result {
                SatResult::Sat => {}
                SatResult::Unsat => {
                    return Ok(VerifyOutcome::Refuted {
                        failed: vc.description.clone(),
                    })
                }
                SatResult::Unknown => {
                    return Ok(VerifyOutcome::Unknown {
                        undecided: vc.description.clone(),
                    })
                }
            }
        }
        Ok(VerifyOutcome::Verified { vcs: vcs.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids_ivl::parse_program;

    fn verify_src(src: &str, proc: &str) -> VerifyOutcome {
        let program = parse_program(src).unwrap();
        ids_ivl::check_program(&program).unwrap();
        let mut tm = TermManager::new();
        VcGen::new(&program, Encoding::Decidable)
            .verify(&mut tm, proc)
            .unwrap()
    }

    #[test]
    fn session_verdicts_match_fresh_solver_per_vc() {
        // A method with branches, heap writes, set ghost state, a failing
        // assert in the middle and valid VCs after it: the incremental
        // session must reproduce the fresh solver's verdict on every VC.
        let program = parse_program(
            r#"
            field key: Int;
            field ghost keys: Set<Int>;
            procedure m(x: Loc, y: Loc, k: Int)
              requires x != nil && y != nil;
              ensures x.key >= 0 || x.key < 0;
            {
              x.key := k;
              x.keys := union(x.keys, {k});
              assert k in x.keys;
              if (x == y) {
                assert y.key == k;
              }
              assert x.key > 0;
              assert x.key == k;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&program).unwrap();
        let mut tm = TermManager::new();
        let method = VcGen::new(&program, Encoding::Decidable)
            .method_vcs(&mut tm, "m")
            .unwrap();
        assert!(method.vcs.len() >= 4);
        let mut session = VcSession::new(Encoding::Decidable);
        let mut saw_refuted = false;
        for vc in &method.vcs {
            let (fresh, _) = check_formula(&mut tm, vc.formula, Encoding::Decidable);
            let (inc, inc_stats) = session.check_vc(&mut tm, &method.hypotheses, vc);
            assert_eq!(inc, fresh, "verdict diverged on: {}", vc.description);
            assert!(inc_stats.theory_rounds > 0);
            saw_refuted |= inc == SatResult::Unsat;
        }
        assert!(saw_refuted, "the test method should have a refuted VC");
    }

    #[test]
    fn slice_hint_discharges_with_fewer_hypotheses() {
        // One assert that depends on exactly one of three requires: the
        // first (unhinted) check reports a strict-subset core; replaying
        // with that core as the hint discharges on the slice alone.
        let program = parse_program(
            r#"
            procedure m(x: Loc, k: Int, j: Int)
              requires x != nil;
              requires k > 10;
              requires j < 0;
            {
              assert k > 5;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&program).unwrap();
        let mut tm = TermManager::new();
        let method = VcGen::new(&program, Encoding::Decidable)
            .method_vcs(&mut tm, "m")
            .unwrap();
        assert_eq!(method.vcs.len(), 1);
        let vc = &method.vcs[0];

        let mut first = VcSession::new(Encoding::Decidable);
        let (verdict, stats, core) = first.check_vc_sliced(&mut tm, &method.hypotheses, vc, None);
        assert_eq!(verdict, SatResult::Sat);
        assert_eq!(stats.slice_hits + stats.slice_fallbacks, 0);
        let core = core.expect("a Valid verdict must come with a core");
        assert!(
            !core.is_empty() && core.len() < vc.n_hyps,
            "expected a strict-subset core, got {core:?} of {} hypotheses",
            vc.n_hyps
        );

        let mut hinted = VcSession::new(Encoding::Decidable);
        let (verdict, stats, re_core) =
            hinted.check_vc_sliced(&mut tm, &method.hypotheses, vc, Some(&core));
        assert_eq!(
            verdict,
            SatResult::Sat,
            "slicing must not change the verdict"
        );
        assert_eq!(stats.slice_hits, 1);
        assert_eq!(stats.slice_fallbacks, 0);
        assert_eq!(stats.slice_dropped_hyps, (vc.n_hyps - core.len()) as u64);
        let re_core = re_core.unwrap();
        assert!(
            re_core.iter().all(|t| core.contains(t)),
            "re-extracted core {re_core:?} escaped the asserted slice {core:?}"
        );

        // A full-prefix hint buys nothing and must be checked the plain way.
        let all: Vec<u32> = (0..vc.n_hyps as u32).collect();
        let mut plain = VcSession::new(Encoding::Decidable);
        let (verdict, stats, _) =
            plain.check_vc_sliced(&mut tm, &method.hypotheses, vc, Some(&all));
        assert_eq!(verdict, SatResult::Sat);
        assert_eq!(stats.slice_hits + stats.slice_fallbacks, 0);
    }

    #[test]
    fn insufficient_slice_falls_back_to_the_full_set() {
        // An empty hint can never refute the negated goal, so the sliced
        // check comes back Sat and the session must re-check under the full
        // hypothesis set — same verdict, fallback counter set.
        let program = parse_program(
            r#"
            procedure m(k: Int)
              requires k > 10;
            {
              assert k > 5;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&program).unwrap();
        let mut tm = TermManager::new();
        let method = VcGen::new(&program, Encoding::Decidable)
            .method_vcs(&mut tm, "m")
            .unwrap();
        let vc = &method.vcs[0];

        let mut session = VcSession::new(Encoding::Decidable);
        let (verdict, stats, core) =
            session.check_vc_sliced(&mut tm, &method.hypotheses, vc, Some(&[]));
        assert_eq!(verdict, SatResult::Sat, "fallback must recover the verdict");
        assert_eq!(stats.slice_hits, 0);
        assert_eq!(stats.slice_fallbacks, 1);
        assert_eq!(stats.slice_dropped_hyps, 0);
        assert!(
            core.is_some(),
            "the full-set re-check still reports its core"
        );

        // A refuted VC under a (stale, out-of-range) hint: the sanitized
        // hint still slices, the fallback still fires, and the verdict is
        // the same counterexample the unhinted path finds.
        let bad = parse_program(
            r#"
            procedure m(k: Int)
              requires k > 10;
            {
              assert k > 100;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&bad).unwrap();
        let mut tm2 = TermManager::new();
        let bad_method = VcGen::new(&bad, Encoding::Decidable)
            .method_vcs(&mut tm2, "m")
            .unwrap();
        let bad_vc = &bad_method.vcs[0];
        let mut s2 = VcSession::new(Encoding::Decidable);
        let (verdict, stats, core) =
            s2.check_vc_sliced(&mut tm2, &bad_method.hypotheses, bad_vc, Some(&[0]));
        assert_eq!(verdict, SatResult::Unsat);
        assert_eq!(stats.slice_fallbacks, 1);
        assert!(core.is_none(), "refuted VCs carry no core");
    }

    #[test]
    fn structure_group_finds_common_prelude_and_caps_at_first_vc() {
        // Two methods with the same parameter shape and a shared leading
        // requires: the prelude covers the common prefix; the early assert
        // in `m2` caps it at m2's first-VC hypothesis count.
        let program = parse_program(
            r#"
            field key: Int;
            procedure m1(x: Loc, k: Int)
              requires x != nil;
              requires k > 0;
            {
              x.key := k;
              assert x.key == k;
            }
            procedure m2(x: Loc, k: Int)
              requires x != nil;
              requires k > 10;
            {
              assert k > 5;
              x.key := k;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&program).unwrap();
        let gen = VcGen::new(&program, Encoding::Decidable);
        let mut tm1 = TermManager::new();
        let mv1 = gen.method_vcs(&mut tm1, "m1").unwrap();
        let mut tm2 = TermManager::new();
        let mv2 = gen.method_vcs(&mut tm2, "m2").unwrap();

        let group = StructureVcs::group(&[
            (&tm1, &mv1.hypotheses[..], &mv1.vcs[..]),
            (&tm2, &mv2.hypotheses[..], &mv2.vcs[..]),
        ]);
        // The methods share `nil ∉ Alloc`, x's typing and `x != nil` but
        // diverge at the second requires; both first VCs come after all
        // requires, so the cap does not bite here.
        assert!(
            group.prelude_len >= 3,
            "expected a common prelude, got {}",
            group.prelude_len
        );
        assert!(group.prelude_len <= mv1.vcs[0].n_hyps);
        assert!(group.prelude_len <= mv2.vcs[0].n_hyps);
        // The prelude really is hash-identical across the managers.
        for (i, h) in group.prelude_hashes.iter().enumerate() {
            assert_eq!(*h, structural_hash(&tm1, mv1.hypotheses[i]));
            assert_eq!(*h, structural_hash(&tm2, mv2.hypotheses[i]));
        }
        // A method whose first VC precedes most hypotheses caps the prelude.
        let capped = StructureVcs::group(&[
            (&tm1, &mv1.hypotheses[..], &mv1.vcs[..]),
            (&tm2, &mv2.hypotheses[..2], &mv2.vcs[..]),
        ]);
        assert!(capped.prelude_len <= 2);
        // Methods without VCs are ignored.
        let empty = StructureVcs::group(&[(&tm1, &mv1.hypotheses[..], &[][..])]);
        assert_eq!(empty.prelude_len, 0);
    }

    #[test]
    fn structure_pool_session_matches_fresh_solver_across_methods() {
        // Three methods of one "structure" — including one with a refuted VC
        // in the middle — checked through ONE structure-pool session over a
        // shared imported term manager: every verdict must match a fresh
        // batch solver on the self-contained formula, and the prelude must
        // be visibly reused from the second method on.
        let program = parse_program(
            r#"
            field key: Int;
            field ghost keys: Set<Int>;
            procedure a(x: Loc, k: Int)
              requires x != nil;
              ensures x.key == k;
            {
              x.key := k;
              x.keys := union(x.keys, {k});
              assert k in x.keys;
            }
            procedure b(x: Loc, k: Int)
              requires x != nil;
            {
              assert k in x.keys;
              x.key := k;
            }
            procedure c(x: Loc, k: Int)
              requires x != nil;
              ensures x.key >= 0 || x.key < 0;
            {
              x.key := k + 1;
              assert x.key == k + 1;
            }
            "#,
        )
        .unwrap();
        ids_ivl::check_program(&program).unwrap();
        let gen = VcGen::new(&program, Encoding::Decidable);
        let methods: Vec<(TermManager, MethodVcs)> = ["a", "b", "c"]
            .iter()
            .map(|m| {
                let mut tm = TermManager::new();
                let mv = gen.method_vcs(&mut tm, m).unwrap();
                (tm, mv)
            })
            .collect();
        let group = StructureVcs::group(
            &methods
                .iter()
                .map(|(tm, mv)| (tm, &mv.hypotheses[..], &mv.vcs[..]))
                .collect::<Vec<_>>(),
        );
        assert!(group.prelude_len > 0);

        // Import everything into one shared manager (what the core layer's
        // StructureSession does): identical prelude hypotheses collapse to
        // identical term ids.
        let mut shared = TermManager::new();
        let mut imported: Vec<(Vec<TermId>, Vec<Vc>)> = Vec::new();
        for (tm, mv) in &methods {
            let mut memo = std::collections::HashMap::new();
            let hyps = shared.import(tm, &mv.hypotheses, &mut memo);
            let vcs = mv
                .vcs
                .iter()
                .map(|vc| Vc {
                    description: vc.description.clone(),
                    formula: shared.import(tm, &[vc.formula], &mut memo)[0],
                    n_hyps: vc.n_hyps,
                    guard: shared.import(tm, &[vc.guard], &mut memo)[0],
                    goal: shared.import(tm, &[vc.goal], &mut memo)[0],
                })
                .collect();
            imported.push((hyps, vcs));
        }
        for (hyps, _) in &imported {
            assert_eq!(
                hyps[..group.prelude_len],
                imported[0].0[..group.prelude_len],
                "imported prelude must hash-cons to shared ids"
            );
        }

        let mut session = VcSession::new(Encoding::Decidable);
        session.assert_prelude(&mut shared, &imported[0].0, group.prelude_len);
        let mut saw_refuted = false;
        let mut saw_reuse = false;
        for (mi, (hyps, vcs)) in imported.iter().enumerate() {
            session.begin_method();
            for (vi, vc) in vcs.iter().enumerate() {
                let (pool, stats) = session.check_vc(&mut shared, hyps, vc);
                let (orig_tm, orig_mv) = &methods[mi];
                let mut tm = orig_tm.clone();
                let (fresh, _) =
                    check_formula(&mut tm, orig_mv.vcs[vi].formula, Encoding::Decidable);
                assert_eq!(pool, fresh, "verdict diverged on: {}", vc.description);
                saw_refuted |= pool == SatResult::Unsat;
                if mi > 0 && vi == 0 {
                    saw_reuse |= stats.prelude_reused >= group.prelude_len as u64;
                }
            }
            session.end_method();
        }
        assert!(saw_refuted, "method b's first assert should be refuted");
        assert!(saw_reuse, "later methods must reuse the prelude");
    }

    #[test]
    fn straight_line_field_update() {
        let out = verify_src(
            r#"
            field key: Int;
            procedure bump(x: Loc)
              requires x != nil;
              ensures x.key == old(x.key) + 1;
            {
              x.key := x.key + 1;
            }
            "#,
            "bump",
        );
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn wrong_postcondition_is_refuted() {
        let out = verify_src(
            r#"
            field key: Int;
            procedure bump(x: Loc)
              requires x != nil;
              ensures x.key == old(x.key) + 2;
            {
              x.key := x.key + 1;
            }
            "#,
            "bump",
        );
        assert!(matches!(out, VerifyOutcome::Refuted { .. }), "{:?}", out);
    }

    #[test]
    fn aliasing_is_respected() {
        // Writing through y must be visible through x when x == y.
        let out = verify_src(
            r#"
            field key: Int;
            procedure alias(x: Loc, y: Loc)
              requires x == y;
              ensures x.key == 5;
            {
              y.key := 5;
            }
            "#,
            "alias",
        );
        assert!(out.is_verified(), "{:?}", out);

        let out = verify_src(
            r#"
            field key: Int;
            procedure alias2(x: Loc, y: Loc)
              ensures x.key == 5;
            {
              y.key := 5;
            }
            "#,
            "alias2",
        );
        assert!(matches!(out, VerifyOutcome::Refuted { .. }), "{:?}", out);
    }

    #[test]
    fn branches_merge() {
        let out = verify_src(
            r#"
            field key: Int;
            procedure maxsel(x: Loc, y: Loc) returns (r: Loc)
              requires x != nil && y != nil;
              ensures r.key >= x.key && r.key >= y.key;
            {
              if (x.key >= y.key) {
                r := x;
              } else {
                r := y;
              }
            }
            "#,
            "maxsel",
        );
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn assert_failure_detected() {
        let out = verify_src(
            r#"
            field key: Int;
            procedure bad(x: Loc)
            {
              assert x.key > 0;
            }
            "#,
            "bad",
        );
        assert!(matches!(out, VerifyOutcome::Refuted { .. }));
    }

    #[test]
    fn loop_with_invariant() {
        let out = verify_src(
            r#"
            field next: Loc;
            procedure count(n: Int) returns (i: Int)
              requires n >= 0;
              ensures i == n;
            {
              i := 0;
              while (i < n)
                invariant i <= n;
              {
                i := i + 1;
              }
            }
            "#,
            "count",
        );
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn loop_invariant_entry_violation_detected() {
        let out = verify_src(
            r#"
            field next: Loc;
            procedure bad_loop(n: Int) returns (i: Int)
            {
              i := 1;
              while (i < n)
                invariant i == 0;
              {
                i := i + 1;
              }
            }
            "#,
            "bad_loop",
        );
        assert!(matches!(out, VerifyOutcome::Refuted { .. }));
    }

    #[test]
    fn allocation_is_fresh() {
        let out = verify_src(
            r#"
            field next: Loc;
            procedure fresh_alloc(x: Loc) returns (y: Loc)
              requires x != nil;
              ensures y != x && y != nil;
            {
              y := new();
            }
            "#,
            "fresh_alloc",
        );
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn call_uses_contract_and_frame() {
        let src = r#"
            field key: Int;
            field ghost hs: Set<Loc>;

            procedure set_to_five(a: Loc)
              requires a != nil;
              ensures a.key == 5;
              modifies {a};

            procedure caller(x: Loc, y: Loc) returns ()
              requires x != nil && y != nil && x != y && y.key == 7;
              ensures x.key == 5 && y.key == 7;
            {
              call set_to_five(x);
            }
        "#;
        let out = verify_src(src, "caller");
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn call_frame_violation_detected() {
        // Without x != y the frame cannot preserve y.key.
        let src = r#"
            field key: Int;

            procedure set_to_five(a: Loc)
              requires a != nil;
              ensures a.key == 5;
              modifies {a};

            procedure caller(x: Loc, y: Loc) returns ()
              requires x != nil && y != nil && y.key == 7;
              ensures y.key == 7;
            {
              call set_to_five(x);
            }
        "#;
        let out = verify_src(src, "caller");
        assert!(matches!(out, VerifyOutcome::Refuted { .. }), "{:?}", out);
    }

    #[test]
    fn quantified_encoding_also_verifies() {
        let src = r#"
            field key: Int;

            procedure set_to_five(a: Loc)
              requires a != nil;
              ensures a.key == 5;
              modifies {a};

            procedure caller(x: Loc, y: Loc) returns ()
              requires x != nil && y != nil && x != y && y.key == 7;
              ensures x.key == 5 && y.key == 7;
            {
              call set_to_five(x);
            }
        "#;
        let program = parse_program(src).unwrap();
        let mut tm = TermManager::new();
        let out = VcGen::new(&program, Encoding::Quantified)
            .verify(&mut tm, "caller")
            .unwrap();
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn set_ghost_state_reasoning() {
        let out = verify_src(
            r#"
            field ghost keys: Set<Int>;
            procedure add_key(x: Loc, k: Int)
              requires x != nil;
              ensures x.keys == union(old(x.keys), {k});
              ensures k in x.keys;
            {
              x.keys := union(x.keys, {k});
            }
            "#,
            "add_key",
        );
        assert!(out.is_verified(), "{:?}", out);
    }

    #[test]
    fn return_in_middle_checks_post() {
        let out = verify_src(
            r#"
            field key: Int;
            procedure early(x: Loc, b: Int) returns (r: Int)
              ensures r >= 0;
            {
              if (b > 0) {
                r := b;
                return;
              }
              r := 0 - b;
            }
            "#,
            "early",
        );
        assert!(out.is_verified(), "{:?}", out);
    }
}
