//! Offline shim of the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`]
//!   and [`strategy::Strategy::prop_recursive`],
//! * range strategies (`-20i64..20`), tuple strategies, and
//!   [`collection::vec`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Generation is a deterministic splittable PRNG seeded per test case, so
//! failures are reproducible run-to-run. There is no shrinking: a failing
//! case panics with the generated inputs printed by the assertion itself
//! (the workspace's properties all format their inputs into the assertion
//! message or derive `Debug` on the generated values).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs its body over generated inputs.
///
/// Supports the same surface as proptest's macro for simple argument lists:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..10, v in proptest::collection::vec(0usize..4, 1..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Built once, outside the case loop: strategy construction
                // can be costly (prop_recursive ties an Rc knot) and cannot
                // depend on the case index. Sampling goes through the
                // tuple-strategy impl, which draws left to right.
                let strategy = ($($strategy,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
}
