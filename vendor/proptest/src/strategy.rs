//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::cell::RefCell;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike full proptest there is no value tree / shrinking machinery: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| f(inner.sample(rng))))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// maps a strategy for subterms to a strategy for composite terms. `depth`
    /// bounds the nesting; the other two parameters (proptest's desired size
    /// and expected branch size) only shape the leaf/branch bias here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        // `slot` is filled with the branch strategy after `recurse` runs; the
        // inner strategy handed to `recurse` reads it back through the cell,
        // tying the recursive knot.
        let slot: Rc<RefCell<Option<BoxedStrategy<Self::Value>>>> = Rc::new(RefCell::new(None));
        let leaf_for_inner = leaf.clone();
        let slot_for_inner = Rc::clone(&slot);
        let inner = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            // Terminate at the depth budget; otherwise branch two times in
            // three so generated terms vary in size.
            if rng.depth() == 0 || rng.below(3) == 0 {
                leaf_for_inner.sample(rng)
            } else {
                let branch = slot_for_inner
                    .borrow()
                    .as_ref()
                    .expect("recursive strategy sampled during construction")
                    .clone();
                rng.push_depth();
                let v = branch.sample(rng);
                rng.pop_depth();
                v
            }
        }));
        *slot.borrow_mut() = Some(recurse(inner.clone()).boxed());
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            rng.with_depth(depth, |rng| inner.sample(rng))
        }))
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternatives (the target of [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: 'static> Union<T> {
    /// A union over the given non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// The strategy returned by [`collection::vec`].
///
/// [`collection::vec`]: crate::collection::vec
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
