//! Test-case configuration and the deterministic RNG behind generation.

/// How many cases each property runs, mirroring proptest's config struct.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type kept for API compatibility with proptest's runner.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A deterministic xorshift-style PRNG. Each test case gets a seed derived
/// from the test's module path + name and the case index, so runs are
/// reproducible without any persisted state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    /// Remaining recursion budget for [`prop_recursive`] strategies.
    ///
    /// [`prop_recursive`]: crate::strategy::Strategy::prop_recursive
    pub(crate) depth: u32,
}

impl TestRng {
    /// Creates the RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Avoid the all-zero fixed point of xorshift.
        let state = if h == 0 { 0x853c_49e6_748f_ea9b } else { h };
        TestRng { state, depth: 0 }
    }

    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    /// Remaining recursion budget (see `Strategy::prop_recursive`).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Spends one level of recursion budget.
    pub fn push_depth(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Returns one level of recursion budget.
    pub fn pop_depth(&mut self) {
        self.depth += 1;
    }

    /// Runs `f` with the recursion budget set to `depth`, restoring the
    /// previous budget afterwards.
    pub fn with_depth<T>(&mut self, depth: u32, f: impl FnOnce(&mut TestRng) -> T) -> T {
        let saved = self.depth;
        self.depth = depth;
        let v = f(self);
        self.depth = saved;
        v
    }
}
