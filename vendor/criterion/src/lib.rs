//! Offline shim of the [criterion](https://crates.io/crates/criterion)
//! benchmarking harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of criterion's API that the `ids-bench` benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Benches compile
//! against it unchanged and, when run, report a median wall-clock time per
//! iteration instead of criterion's full statistical analysis.
//!
//! When `cargo test` runs a `harness = false` bench target it passes
//! `--test`; in that mode each benchmark function is executed exactly once so
//! the suite stays fast while still exercising every bench body.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Returns its argument, hiding it from the optimizer.
///
/// A `black_box` that works on stable without inline assembly: routing the
/// value through a volatile read prevents the compiler from constant-folding
/// benchmark bodies away.
pub fn black_box<T>(dummy: T) -> T {
    // std::hint::black_box is stable since 1.66 — just defer to it.
    std::hint::black_box(dummy)
}

/// How a bench invocation should behave (full measurement vs. smoke test).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report per-iteration times.
    Measure,
    /// `cargo test` on a bench target: run each body once, report nothing.
    Test,
    /// `--list` was passed: print benchmark names without running them.
    List,
}

/// Parses the mode plus the libtest-style positional name filter, so
/// `cargo test some_name` doesn't execute every unrelated bench body.
fn args_from_cli() -> (Mode, Option<String>) {
    let mut mode = Mode::Measure;
    let mut filter = None;
    let mut skip_value = false;
    for arg in std::env::args().skip(1) {
        if skip_value {
            skip_value = false;
            continue;
        }
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            "--format" | "--logfile" | "-Z" => skip_value = true,
            a if a.starts_with('-') => {}
            a => filter = Some(a.to_string()),
        }
    }
    (mode, filter)
}

/// The measurement configuration and sink for one bench run.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let (mode, filter) = args_from_cli();
        Criterion {
            mode,
            filter,
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget (a cap, not a target, in this shim).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        self.run_one(name, sample_size, measurement_time, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        match self.mode {
            Mode::List => {
                println!("{}: benchmark", name);
            }
            Mode::Test => {
                let mut b = Bencher {
                    samples: Vec::new(),
                    max_samples: 1,
                    budget: Duration::from_secs(3600),
                };
                f(&mut b);
                println!("test {} ... ok", name);
            }
            Mode::Measure => {
                let mut b = Bencher {
                    samples: Vec::new(),
                    max_samples: sample_size,
                    budget: measurement_time,
                };
                f(&mut b);
                b.samples.sort_unstable();
                let median = b
                    .samples
                    .get(b.samples.len() / 2)
                    .copied()
                    .unwrap_or_default();
                println!(
                    "{:<60} median {:>12.3?}  ({} samples)",
                    name,
                    median,
                    b.samples.len()
                );
            }
        }
    }
}

/// A named collection of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let measurement_time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion
            .run_one(&full, sample_size, measurement_time, f);
        self
    }

    /// Finishes the group (a no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Times repeated invocations of `routine` until the sample count or the
    /// time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.max_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a function that runs each listed benchmark with a fresh default
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` as running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
