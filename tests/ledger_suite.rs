//! Integration tests of the run ledger: schema round-trip, concurrent
//! appends under the lockfile discipline, the `compare` regression gate
//! (including the phase-attribution golden test), and `history` rendering.

use std::path::Path;

use ids_driver::ledger::{
    append_run, compare, history_lines, load_runs, CompareOpts, RunMeta, RunRecord, VcLedgerEntry,
    LEDGER_SCHEMA, PHASES, SOLVER_COUNTERS,
};
use ids_obs::{HistogramSet, Metric};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ids-ledger-test-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_meta(timestamp: u64) -> RunMeta {
    RunMeta {
        timestamp,
        hostname: "test-host".to_string(),
        command: "suite --quick".to_string(),
        pool_mode: "structure".to_string(),
        profile: "default".to_string(),
        jobs: 4,
        encoding: "decidable".to_string(),
        fingerprint: "deadbeefcafe0123".to_string(),
        wall_s: 1.5,
    }
}

/// A synthetic VC entry. Times are picked to survive the ledger's ms/s
/// rounding so round-trip comparisons can use exact equality.
fn sample_vc(key: u128, solve_ms: f64, euf_s: f64) -> VcLedgerEntry {
    let mut hists = HistogramSet::default();
    for v in [3, 90, 1500, 70_000] {
        hists.record(Metric::TheoryRoundUs, v);
    }
    hists.record(Metric::PivotsPerRound, 12);
    VcLedgerEntry {
        key,
        structure: "Singly-Linked List".to_string(),
        method: "insert_back".to_string(),
        vc_index: key as u64 % 7,
        description: format!("ensures#{} with \"quotes\" and \\ backslash", key),
        verdict: "valid".to_string(),
        cached: false,
        queue_ms: 0.25,
        solve_ms,
        phases: [0.001, 0.0625, euf_s, 0.03125, 0.015625],
        solver: [9, 8, 7, 6, 5, 40, 3, 2, 1, 11, 2, 1, 6],
        core: None,
        hists,
    }
}

fn sample_record(timestamp: u64, solve_ms: f64, euf_s: f64) -> RunRecord {
    RunRecord {
        schema: LEDGER_SCHEMA,
        meta: sample_meta(timestamp),
        vcs: (0..3)
            .map(|i| sample_vc(0x1000 + i as u128, solve_ms, euf_s))
            .collect(),
    }
}

#[test]
fn schema_round_trips_exactly() {
    let mut record = sample_record(1_700_000_000, 250.5, 0.125);
    // One VC with a recorded unsat core (empty cores are legal too) so the
    // optional field round-trips alongside core-less entries.
    record.vcs[1].core = Some(vec![0, 4, 7]);
    record.vcs[2].core = Some(vec![]);
    let line = record.to_json_line();
    assert!(!line.contains('\n'), "a record must be a single JSONL line");
    let parsed = RunRecord::parse(&line).expect("parse own output");
    assert_eq!(parsed, record, "write -> parse must be the identity");
    // Field spot-checks so a silently-permissive PartialEq can't hide a bug.
    assert_eq!(parsed.schema, LEDGER_SCHEMA);
    assert_eq!(parsed.meta.hostname, "test-host");
    assert_eq!(parsed.vcs.len(), 3);
    let vc = &parsed.vcs[0];
    assert_eq!(vc.key, 0x1000);
    assert_eq!(vc.phases.len(), PHASES.len());
    assert_eq!(vc.solver.len(), SOLVER_COUNTERS.len());
    let h = vc.hists.get(Metric::TheoryRoundUs);
    assert_eq!(h.count(), 4);
    assert_eq!(h.max(), 70_000);
    assert!(vc.hists.get(Metric::ConflictGapUs).is_empty());
    assert_eq!(vc.core, None);
    assert_eq!(parsed.vcs[1].core.as_deref(), Some(&[0, 4, 7][..]));
    assert_eq!(parsed.vcs[2].core.as_deref(), Some(&[][..]));
}

/// Schema-1 lines (pre unsat-core counters) and schema-2 lines (pre slice
/// counters and per-VC cores) must keep parsing so the CI baseline and local
/// history ledgers written before the v3 bump stay comparable; the fields
/// they lack read back as zero / `None`.
#[test]
fn older_schema_lines_still_parse_with_zeroed_new_fields() {
    let record = sample_record(7, 50.0, 0.01);
    let idx = |name: &str| SOLVER_COUNTERS.iter().position(|&c| c == name).unwrap();
    const SLICE_TOKENS: &str = ",\"slice_hits\":2,\"slice_fallbacks\":1,\"slice_dropped_hyps\":6";

    // Rewrite the line into its v2 form: old schema tag, no slice counters.
    let mut v2 = record.to_json_line();
    v2 = v2.replacen(&format!("\"schema\":{}", LEDGER_SCHEMA), "\"schema\":2", 1);
    v2 = v2.replace(SLICE_TOKENS, "");
    assert!(!v2.contains("slice_"), "v2 line built incorrectly");
    let parsed = RunRecord::parse(&v2).expect("v2 line parses");
    assert_eq!(parsed.schema, 2);
    for vc in &parsed.vcs {
        assert_eq!(vc.solver[idx("slice_hits")], 0);
        assert_eq!(vc.solver[idx("slice_fallbacks")], 0);
        assert_eq!(vc.solver[idx("slice_dropped_hyps")], 0);
        assert_eq!(vc.core, None);
        // The shared prefix of the counter array is intact.
        assert_eq!(&vc.solver[..10], &record.vcs[0].solver[..10]);
    }

    // The v1 form additionally lacks the unsat-core counters.
    let mut v1 = record.to_json_line();
    v1 = v1.replacen(&format!("\"schema\":{}", LEDGER_SCHEMA), "\"schema\":1", 1);
    v1 = v1.replace(SLICE_TOKENS, "");
    v1 = v1.replace(",\"unsat_cores\":1,\"unsat_core_size\":11", "");
    assert!(!v1.contains("core"), "v1 line built incorrectly");
    let parsed = RunRecord::parse(&v1).expect("v1 line parses");
    assert_eq!(parsed.schema, 1);
    for vc in &parsed.vcs {
        assert_eq!(vc.solver[idx("unsat_cores")], 0);
        assert_eq!(vc.solver[idx("unsat_core_size")], 0);
        assert_eq!(vc.solver[idx("slice_hits")], 0);
        assert_eq!(vc.core, None);
        assert_eq!(&vc.solver[..8], &record.vcs[0].solver[..8]);
    }

    // A future schema is still foreign and must be rejected.
    let future = record.to_json_line().replacen(
        &format!("\"schema\":{}", LEDGER_SCHEMA),
        "\"schema\":99",
        1,
    );
    assert!(RunRecord::parse(&future).is_err());
}

#[test]
fn parse_rejects_garbage_and_load_skips_it() {
    assert!(RunRecord::parse("not json").is_err());
    assert!(RunRecord::parse("{}").is_err());
    assert!(RunRecord::parse("[1,2]").is_err());

    // A ledger with one malformed line still yields the good runs.
    let dir = temp_dir("skip");
    let path = dir.join("ledger.jsonl");
    let record = sample_record(1, 10.0, 0.001);
    append_run(&path, &record).expect("append");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open");
        writeln!(f, "{{\"schema\":1,\"truncated\":").expect("write");
    }
    append_run(&path, &record).expect("append");
    let runs = load_runs(&path).expect("load");
    assert_eq!(runs.len(), 2, "malformed middle line must be skipped");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_appends_all_survive() {
    let dir = temp_dir("concurrent");
    let path = dir.join("ledger.jsonl");
    const WRITERS: usize = 8;
    const APPENDS: usize = 5;
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let path: &Path = &path;
            s.spawn(move || {
                for i in 0..APPENDS {
                    let record = sample_record((w * APPENDS + i) as u64, 10.0, 0.001);
                    append_run(path, &record).expect("append");
                }
            });
        }
    });
    let runs = load_runs(&path).expect("load");
    assert_eq!(
        runs.len(),
        WRITERS * APPENDS,
        "every concurrent append must yield one intact line"
    );
    let mut stamps: Vec<u64> = runs.iter().map(|r| r.meta.timestamp).collect();
    stamps.sort_unstable();
    stamps.dedup();
    assert_eq!(stamps.len(), WRITERS * APPENDS, "no line torn or lost");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The golden test of the regression gate: inject a synthetic slowdown whose
/// extra time sits in the EUF phase, and require compare() to flag the
/// regression, attribute it to "euf", and fail the run.
#[test]
fn compare_detects_injected_euf_slowdown() {
    let base = sample_record(1, 200.0, 0.05);
    // +400 ms solve time, +0.4 s of it in euf, pivots 40 -> 200 (5x).
    let mut new = sample_record(2, 600.0, 0.45);
    for vc in &mut new.vcs {
        let pivots_idx = SOLVER_COUNTERS.iter().position(|&c| c == "pivots").unwrap();
        vc.solver[pivots_idx] = 200;
    }
    let opts = CompareOpts::default();
    let report = compare(&base, &new, &opts);
    assert_eq!(report.deltas.len(), 3);
    assert_eq!(report.regressions, 3);
    assert_eq!(report.improvements, 0);
    assert_eq!(report.verdict_mismatches, 0);
    for d in &report.deltas {
        assert!(d.regressed, "every VC slowed 3x past both thresholds");
        assert_eq!(
            d.attributed_phase.as_deref(),
            Some("euf"),
            "the slowdown was injected into euf, attribution must say so: {}",
            d.attribution
        );
        assert!(
            d.attribution.contains("euf +"),
            "attribution text names the phase: {}",
            d.attribution
        );
        assert!(
            d.attribution.contains("pivots 5.0x"),
            "notable pivot swing is surfaced: {}",
            d.attribution
        );
    }
    assert!(report.failed(&opts), "a regression must exit nonzero");
    // The same deltas in advisory mode report but do not fail.
    let advisory = CompareOpts {
        advisory_timing: true,
        ..CompareOpts::default()
    };
    assert!(!report.failed(&advisory));
    // The reverse comparison is an improvement, not a regression.
    let reverse = compare(&new, &base, &opts);
    assert_eq!(reverse.regressions, 0);
    assert_eq!(reverse.improvements, 3);
    assert!(!reverse.failed(&opts));
}

#[test]
fn compare_noise_gate_and_verdict_changes() {
    let base = sample_record(1, 100.0, 0.01);
    // +20 ms is past neither the 25% nor the 50 ms default gate... barely
    // past one of them alone must also not count.
    let small = sample_record(2, 120.0, 0.02);
    let opts = CompareOpts::default();
    assert_eq!(compare(&base, &small, &opts).regressions, 0);
    // +60 ms: past the 50 ms absolute gate but only when also past 25%.
    let only_abs = sample_record(3, 160.0, 0.06);
    assert_eq!(compare(&base, &only_abs, &opts).regressions, 3);
    let tight = CompareOpts {
        threshold_pct: 75.0,
        ..CompareOpts::default()
    };
    assert_eq!(
        compare(&base, &only_abs, &tight).regressions,
        0,
        "60% delta must not pass a 75% gate"
    );

    // Cached rows join for verdicts but never for timing.
    let mut cached = sample_record(4, 9_000.0, 0.01);
    for vc in &mut cached.vcs {
        vc.cached = true;
    }
    let report = compare(&base, &cached, &opts);
    assert_eq!(report.regressions, 0);
    assert_eq!(report.deltas.len(), 3);

    // A verdict change always fails, even in advisory mode.
    let mut flipped = sample_record(5, 100.0, 0.01);
    flipped.vcs[0].verdict = "refuted".to_string();
    let advisory = CompareOpts {
        advisory_timing: true,
        ..CompareOpts::default()
    };
    let report = compare(&base, &flipped, &advisory);
    assert_eq!(report.verdict_mismatches, 1);
    assert!(report.failed(&advisory));

    // Disjoint keys land in only_base / only_new, not in the join.
    let mut moved = sample_record(6, 100.0, 0.01);
    for vc in &mut moved.vcs {
        vc.key += 0x9999;
    }
    let report = compare(&base, &moved, &opts);
    assert!(report.deltas.is_empty());
    assert_eq!(report.only_base.len(), 3);
    assert_eq!(report.only_new.len(), 3);
}

/// Regression test: a baseline row with `solve_ms == 0` (a fully cached run,
/// or a ledger predating per-VC timing) makes the percentage gate vacuous —
/// every nonzero warm time is infinitely many percent over zero. Such rows
/// must be excluded from timing classification (no regression, no
/// improvement, no phase attribution) while still joining for verdicts.
#[test]
fn compare_skips_timing_on_zero_ms_baseline_rows() {
    let mut base = sample_record(1, 0.0, 0.0);
    for vc in &mut base.vcs {
        vc.phases = [0.0; 5];
    }
    let new = sample_record(2, 500.0, 0.4);
    let opts = CompareOpts::default();
    let report = compare(&base, &new, &opts);
    assert_eq!(report.deltas.len(), 3, "zero-ms rows still join");
    assert_eq!(report.regressions, 0, "no percent gate against a 0 ms base");
    assert_eq!(report.improvements, 0);
    for d in &report.deltas {
        assert!(!d.regressed && !d.improved);
        assert_eq!(
            d.attributed_phase, None,
            "an all-zero baseline row must not be attributed to a phase"
        );
        assert!(d.attribution.is_empty(), "attribution: {}", d.attribution);
    }
    assert!(!report.failed(&opts));
    // The mirror image — new run instant, baseline timed — is classified
    // normally: the percent gate divides by the *baseline*, which is sound.
    let reverse = compare(&new, &base, &opts);
    assert_eq!(reverse.regressions, 0);
    assert_eq!(reverse.improvements, 3);
    // Verdict changes on zero-ms rows still fail the gate.
    let mut flipped = sample_record(3, 500.0, 0.4);
    flipped.vcs[0].verdict = "refuted".to_string();
    let report = compare(&base, &flipped, &opts);
    assert_eq!(report.verdict_mismatches, 1);
    assert!(report.failed(&opts));
}

#[test]
fn history_renders_trajectories() {
    let dir = temp_dir("history");
    let path = dir.join("ledger.jsonl");
    append_run(&path, &sample_record(1, 100.0, 0.01)).expect("append");
    let mut second = sample_record(2, 150.0, 0.01);
    second.vcs[0].cached = true;
    second.vcs.remove(2); // VC 0x1002 missing from run 2
    append_run(&path, &second).expect("append");
    let runs = load_runs(&path).expect("load");
    let lines = history_lines(&runs, None);
    assert_eq!(lines.len(), 3);
    let line0 = lines.iter().find(|l| l.contains("ensures#4096")).unwrap();
    assert!(
        line0.contains("100.0 -> cached"),
        "cached runs render as 'cached': {}",
        line0
    );
    let line2 = lines.iter().find(|l| l.contains("ensures#4098")).unwrap();
    assert!(
        line2.contains("100.0 -> -"),
        "missing VCs render as '-': {}",
        line2
    );
    let filtered = history_lines(&runs, Some("INSERT_BACK"));
    assert_eq!(filtered.len(), 3, "filter is case-insensitive");
    assert!(history_lines(&runs, Some("no-such-method")).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
