//! End-to-end tests of the parallel batch driver: verdict parity with the
//! sequential pipeline, warm-cache incrementality (a second run against a
//! persisted cache discharges zero new SMT queries), and solver-statistics
//! threading.

use std::path::PathBuf;

use intrinsic_verify::core::pipeline::{load_methods, verify_method_in, PipelineConfig};
use intrinsic_verify::driver::{verify_selections, DriverConfig, PoolMode, Selection};
use intrinsic_verify::structures::lists;

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ids-driver-test-{}-{}.cache",
        std::process::id(),
        tag
    ))
}

fn sll_selection(ids: &intrinsic_verify::core::IntrinsicDefinition) -> Selection<'_> {
    Selection {
        name: "Singly-Linked List",
        definition: ids,
        methods_src: lists::SINGLY_LINKED_LIST_METHODS,
        methods: vec!["set_key".into(), "delete_front".into()],
    }
}

#[test]
fn parallel_verdicts_match_sequential_pipeline() {
    let ids = lists::singly_linked_list();
    let selections = vec![sll_selection(&ids)];
    let config = DriverConfig {
        jobs: 4,
        ..DriverConfig::default()
    };
    let batch = verify_selections(&selections, &config);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);

    let merged = load_methods(&ids, lists::SINGLY_LINKED_LIST_METHODS).unwrap();
    for report in &batch.reports {
        let sequential =
            verify_method_in(&ids, &merged, &report.method, PipelineConfig::default()).unwrap();
        assert_eq!(
            report.outcome.is_verified(),
            sequential.outcome.is_verified(),
            "verdict diverged for {}",
            report.method
        );
        assert_eq!(report.num_vcs, sequential.num_vcs);
        // Statistics are threaded through both paths.
        assert!(report.solver.sat_propagations > 0, "{:?}", report.solver);
        assert!(sequential.solver.sat_propagations > 0);
    }
}

#[test]
fn warm_cache_rerun_discharges_zero_smt_queries() {
    let cache = temp_cache("warm");
    std::fs::remove_file(&cache).ok();
    let ids = lists::singly_linked_list();
    let selections = vec![sll_selection(&ids)];
    let config = DriverConfig {
        jobs: 2,
        cache_path: Some(cache.clone()),
        ..DriverConfig::default()
    };

    let cold = verify_selections(&selections, &config);
    assert!(cold.all_verified(), "{:?}", cold.errors);
    assert!(cold.stats.smt_queries > 0, "cold run must query the solver");
    assert!(cache.exists(), "cache file must be persisted");

    let warm = verify_selections(&selections, &config);
    assert!(warm.all_verified(), "{:?}", warm.errors);
    assert_eq!(
        warm.stats.smt_queries, 0,
        "warm re-run must be answered entirely from the cache"
    );
    assert_eq!(warm.stats.cache_hits, warm.stats.vcs);

    // Verdicts and row shapes are identical between cold and warm runs.
    assert_eq!(cold.reports.len(), warm.reports.len());
    for (c, w) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(c.method, w.method);
        assert_eq!(c.outcome.is_verified(), w.outcome.is_verified());
        assert_eq!(c.num_vcs, w.num_vcs);
    }
    std::fs::remove_file(&cache).ok();
}

#[test]
fn pool_modes_report_identically_across_structures() {
    // One batch spanning several structure families plus a refuted method,
    // run through all three `--pool-mode` values: structure-scoped warm
    // pools (default), per-method sessions and fresh per-VC jobs. The
    // *reports* must be byte-identical: outcome kind and failing-VC
    // description, VC counts, cache accounting. Only solver-internal
    // statistics (conflicts, propagations, times, prelude reuse) may differ
    // between the solving strategies.
    use intrinsic_verify::structures::trees;
    let sll = lists::singly_linked_list();
    let circ = lists::circular_list();
    let bst = trees::bst();
    let methods = |names: &[&str]| names.iter().map(|m| m.to_string()).collect::<Vec<_>>();
    let selections = vec![
        Selection {
            name: "Singly-Linked List",
            definition: &sll,
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: methods(&["set_key", "find"]),
        },
        Selection {
            name: "Singly-Linked List (buggy)",
            definition: &sll,
            methods_src: intrinsic_verify::structures::buggy::BUGGY_LIST_METHODS,
            methods: methods(&["insert_front_forgets_length"]),
        },
        Selection {
            name: "Circular List",
            definition: &circ,
            methods_src: lists::CIRCULAR_LIST_METHODS,
            methods: methods(&["rotate_entry", "set_node_key"]),
        },
        Selection {
            name: "Binary Search Tree",
            definition: &bst,
            methods_src: trees::BST_METHODS,
            methods: methods(&["bst_find_min"]),
        },
    ];
    let run = |mode: PoolMode| {
        verify_selections(
            &selections,
            &DriverConfig {
                jobs: 2,
                pool_mode: mode,
                ..DriverConfig::default()
            },
        )
    };
    let structure = run(PoolMode::Structure);
    let method = run(PoolMode::Method);
    let fresh = run(PoolMode::None);
    for (label, batch) in [
        ("structure", &structure),
        ("method", &method),
        ("none", &fresh),
    ] {
        assert!(batch.errors.is_empty(), "{}: {:?}", label, batch.errors);
        assert_eq!(batch.reports.len(), structure.reports.len(), "{}", label);
        assert_eq!(batch.stats.vcs, structure.stats.vcs, "{}", label);
    }
    for (label, other) in [("method", &method), ("none", &fresh)] {
        for (a, b) in structure.reports.iter().zip(&other.reports) {
            assert_eq!(a.structure, b.structure, "{}", label);
            assert_eq!(a.method, b.method, "{}", label);
            // Full outcome equality: kind *and* failing-VC description.
            assert_eq!(
                a.outcome, b.outcome,
                "{}::{} diverged under pool mode {}",
                a.structure, a.method, label
            );
            assert_eq!(a.num_vcs, b.num_vcs);
        }
    }
    // Stats-consistency: every mode did real solving work. (Cancellation
    // timing under concurrency may make the exact query counts differ; the
    // *reported* rows above may not.)
    for batch in [&structure, &method, &fresh] {
        for r in &batch.reports {
            if r.outcome.is_verified() {
                assert!(r.solver.theory_rounds > 0, "{}: {:?}", r.method, r.solver);
            }
        }
    }
    assert!(!structure.all_verified(), "the buggy method must fail");
}

#[test]
fn failing_methods_keep_failing_under_the_driver() {
    let ids = lists::singly_linked_list();
    let selections = vec![Selection {
        name: "Singly-Linked List (buggy)",
        definition: &ids,
        methods_src: intrinsic_verify::structures::buggy::BUGGY_LIST_METHODS,
        methods: vec![
            "insert_front_forgets_length".into(),
            "leaves_broken_set_nonempty".into(),
        ],
    }];
    let config = DriverConfig {
        jobs: 2,
        ..DriverConfig::default()
    };
    let batch = verify_selections(&selections, &config);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    assert_eq!(batch.reports.len(), 2);
    for report in &batch.reports {
        assert!(
            !report.outcome.is_verified(),
            "{} must be refuted",
            report.method
        );
    }
    assert!(!batch.all_verified());
}
