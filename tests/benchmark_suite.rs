//! Integration tests over the shipped benchmark suite (`ids-structures`):
//! the registry is complete, the method files obey the FWYB discipline, and a
//! representative method per family verifies end to end.

use intrinsic_verify::driver::{verify_selections, DriverConfig, Selection};
use intrinsic_verify::structures::{all_benchmarks, lists, trees};

#[test]
fn registry_matches_the_papers_structure_list() {
    let names: Vec<String> = all_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect();
    for expected in [
        "Singly-Linked List",
        "Sorted List",
        "Sorted List (w. min, max)",
        "Circular List",
        "Binary Search Tree",
        "Treap",
        "AVL Tree",
        "Red-Black Tree",
        "BST+Scaffolding",
        "Scheduler Queue (overlaid SLL+BST)",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {}", expected);
    }
}

#[test]
fn every_definition_declares_impact_sets_for_every_field() {
    for b in all_benchmarks() {
        let impact_fields: Vec<&String> = b.definition.impact_sets.keys().collect();
        assert!(
            !impact_fields.is_empty(),
            "{} declares no impact sets",
            b.name
        );
    }
}

#[test]
fn representative_methods_verify() {
    // One method per family, batched through the parallel driver.
    let sll = lists::singly_linked_list();
    let treap = trees::treap();
    let scaffolding = trees::bst_scaffolding();
    let selections = vec![
        Selection {
            name: "Singly-Linked List",
            definition: &sll,
            methods_src: lists::SINGLY_LINKED_LIST_METHODS,
            methods: vec!["set_key".into()],
        },
        Selection {
            name: "Treap",
            definition: &treap,
            methods_src: trees::TREAP_METHODS,
            methods: vec!["treap_raise_root_priority".into()],
        },
        Selection {
            name: "BST+Scaffolding",
            definition: &scaffolding,
            methods_src: trees::BST_SCAFFOLDING_METHODS,
            methods: vec!["scaffolding_of".into()],
        },
    ];
    let config = DriverConfig {
        jobs: 2,
        ..DriverConfig::default()
    };
    let batch = verify_selections(&selections, &config);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    assert_eq!(batch.reports.len(), 3);
    for report in &batch.reports {
        assert!(
            report.outcome.is_verified(),
            "{} failed: {:?}",
            report.method,
            report.outcome
        );
        assert!(report.num_vcs > 0);
    }
    assert_eq!(batch.stats.methods, 3);
    assert_eq!(
        batch.stats.cache_hits + batch.stats.smt_queries,
        batch.stats.vcs
    );
}
