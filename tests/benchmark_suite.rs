//! Integration tests over the shipped benchmark suite (`ids-structures`):
//! the registry is complete, the method files obey the FWYB discipline, and a
//! representative method per family verifies end to end.

use intrinsic_verify::core::pipeline::{load_methods, verify_method_in, PipelineConfig};
use intrinsic_verify::structures::{all_benchmarks, lists, trees};

#[test]
fn registry_matches_the_papers_structure_list() {
    let names: Vec<String> = all_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect();
    for expected in [
        "Singly-Linked List",
        "Sorted List",
        "Sorted List (w. min, max)",
        "Circular List",
        "Binary Search Tree",
        "Treap",
        "AVL Tree",
        "Red-Black Tree",
        "BST+Scaffolding",
        "Scheduler Queue (overlaid SLL+BST)",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {}", expected);
    }
}

#[test]
fn every_definition_declares_impact_sets_for_every_field() {
    for b in all_benchmarks() {
        let impact_fields: Vec<&String> = b.definition.impact_sets.keys().collect();
        assert!(
            !impact_fields.is_empty(),
            "{} declares no impact sets",
            b.name
        );
    }
}

#[test]
fn representative_methods_verify() {
    let cases = [
        (
            lists::singly_linked_list(),
            lists::SINGLY_LINKED_LIST_METHODS,
            "set_key",
        ),
        (
            trees::treap(),
            trees::TREAP_METHODS,
            "treap_raise_root_priority",
        ),
        (
            trees::bst_scaffolding(),
            trees::BST_SCAFFOLDING_METHODS,
            "scaffolding_of",
        ),
    ];
    for (ids, src, method) in cases {
        let merged = load_methods(&ids, src).unwrap();
        let report = verify_method_in(&ids, &merged, method, PipelineConfig::default()).unwrap();
        assert!(
            report.outcome.is_verified(),
            "{} failed: {:?}",
            method,
            report.outcome
        );
    }
}
