//! Golden-schema test of the observability timeline: a small linked-list run
//! captured between `trace_start` and `trace_stop` must produce well-formed
//! lanes — every Begin matched by an End of the same name in LIFO order,
//! timestamps monotone within a lane — whose span names cover the pipeline
//! phases the trace export advertises, and whose Chrome trace_event JSON
//! rendering carries the markers Perfetto keys on.
//!
//! This is its own test binary (not a `#[test]` inside `pool_parity`)
//! because tracing is process-global: a concurrently running test would
//! interleave its events into the capture.

use intrinsic_verify::core::IntrinsicDefinition;
use intrinsic_verify::driver::{verify_selections, DriverConfig, PoolMode, Selection};
use intrinsic_verify::obs;
use std::collections::HashSet;

fn list_ids() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "acyclic-list",
        r#"
        field next: Loc;
        field ghost prev: Loc;
        field ghost length: Int;
        "#,
        "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && (x.length >= 1)",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
        ],
    )
    .unwrap()
}

const METHODS_SRC: &str = r#"
    procedure insert_front(x: Loc) returns (r: Loc)
      requires Br == {} && x != nil && x.prev == nil;
      ensures Br == {} && r != nil && r.prev == nil;
      modifies {};
    {
      InferLCOutsideBr(x);
      var z: Loc;
      NewObj(z);
      Mut(z, next, x);
      Mut(z, length, x.length + 1);
      Mut(z, prev, nil);
      Mut(x, prev, z);
      AssertLCAndRemove(z);
      AssertLCAndRemove(x);
      r := z;
    }
    procedure touch(x: Loc)
      requires Br == {} && x != nil;
      ensures Br == {};
      modifies {};
    {
      InferLCOutsideBr(x);
      AssertLCAndRemove(x);
    }
"#;

#[test]
fn chrome_trace_schema_is_well_formed() {
    let ids = list_ids();
    let selection = Selection {
        name: "acyclic-list",
        definition: &ids,
        methods_src: METHODS_SRC,
        methods: vec!["insert_front".to_string(), "touch".to_string()],
    };

    obs::trace_start();
    let batch = verify_selections(
        std::slice::from_ref(&selection),
        &DriverConfig {
            jobs: 1,
            pool_mode: PoolMode::Structure,
            cache_path: None,
            ..DriverConfig::default()
        },
    );
    let lanes = obs::trace_stop();

    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    assert!(batch.all_verified());
    assert!(!lanes.is_empty(), "tracing captured no lanes");

    let mut names: HashSet<&'static str> = HashSet::new();
    for lane in &lanes {
        let mut open: Vec<&'static str> = Vec::new();
        let mut last_ts = 0u64;
        for e in &lane.events {
            assert!(
                e.ts_us >= last_ts,
                "lane {}: timestamps not monotone ({} after {})",
                lane.lane,
                e.ts_us,
                last_ts
            );
            last_ts = e.ts_us;
            names.insert(e.name);
            match e.kind {
                obs::EventKind::Begin => open.push(e.name),
                obs::EventKind::End => {
                    let begun = open.pop().unwrap_or_else(|| {
                        panic!("lane {}: End '{}' without a Begin", lane.lane, e.name)
                    });
                    assert_eq!(
                        begun, e.name,
                        "lane {}: spans closed out of LIFO order",
                        lane.lane
                    );
                }
                obs::EventKind::Instant => {}
            }
        }
        assert!(
            open.is_empty(),
            "lane {}: unclosed spans {:?}",
            lane.lane,
            open
        );
    }

    // The phases the subsystem advertises must all appear on a run that
    // lowers, converts, searches and theory-checks real VCs.
    for phase in [
        "resolve",
        "solve",
        "structure",
        "prepare",
        "vc",
        "prelude",
        "lower",
        "cnf",
        "sat",
        "euf",
        "simplex",
    ] {
        assert!(
            names.contains(phase),
            "no '{}' span in trace (got {:?})",
            phase,
            names
        );
    }

    let json = obs::chrome_trace_json(&lanes);
    assert!(json.starts_with("{\"traceEvents\":["), "not a trace object");
    assert!(json.trim_end().ends_with("]}"), "unterminated trace object");
    for marker in [
        "\"ph\":\"B\"",
        "\"ph\":\"E\"",
        "\"ph\":\"M\"",
        "\"name\":\"thread_name\"",
        "\"name\":\"sat\"",
    ] {
        assert!(json.contains(marker), "trace JSON lacks {}", marker);
    }
}
