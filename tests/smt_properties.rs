//! Property-based tests of the SMT substrate (`ids-smt`) through the umbrella
//! crate: the solver's answers are compared against brute-force evaluation and
//! reference models on randomly generated inputs.
//!
//! These properties pin down the soundness of exactly the fragment the FWYB
//! verification conditions live in: Boolean structure, equality over
//! uninterpreted terms, linear integer arithmetic, extensional sets and
//! arrays with read-over-write reasoning.

use std::collections::HashMap;

use intrinsic_verify::smt::{SatResult, Solver, Sort, TermId, TermManager};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Random propositional formulas vs. brute-force truth tables
// ---------------------------------------------------------------------------

/// A tiny AST of propositional formulas over `n` variables, used as the
/// generator target (generating `TermId`s directly would tie the generator to
/// a term manager instance).
#[derive(Clone, Debug)]
enum PropFormula {
    Var(usize),
    Not(Box<PropFormula>),
    And(Box<PropFormula>, Box<PropFormula>),
    Or(Box<PropFormula>, Box<PropFormula>),
    Implies(Box<PropFormula>, Box<PropFormula>),
    Iff(Box<PropFormula>, Box<PropFormula>),
}

fn prop_formula(num_vars: usize) -> impl Strategy<Value = PropFormula> {
    let leaf = (0..num_vars).prop_map(PropFormula::Var);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| PropFormula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PropFormula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PropFormula::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PropFormula::Implies(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| PropFormula::Iff(Box::new(a), Box::new(b))),
        ]
    })
}

fn encode(tm: &mut TermManager, vars: &[TermId], f: &PropFormula) -> TermId {
    match f {
        PropFormula::Var(i) => vars[*i],
        PropFormula::Not(a) => {
            let ea = encode(tm, vars, a);
            tm.not(ea)
        }
        PropFormula::And(a, b) => {
            let (ea, eb) = (encode(tm, vars, a), encode(tm, vars, b));
            tm.and2(ea, eb)
        }
        PropFormula::Or(a, b) => {
            let (ea, eb) = (encode(tm, vars, a), encode(tm, vars, b));
            tm.or2(ea, eb)
        }
        PropFormula::Implies(a, b) => {
            let (ea, eb) = (encode(tm, vars, a), encode(tm, vars, b));
            tm.implies(ea, eb)
        }
        PropFormula::Iff(a, b) => {
            let (ea, eb) = (encode(tm, vars, a), encode(tm, vars, b));
            tm.iff(ea, eb)
        }
    }
}

fn eval(f: &PropFormula, assignment: &[bool]) -> bool {
    match f {
        PropFormula::Var(i) => assignment[*i],
        PropFormula::Not(a) => !eval(a, assignment),
        PropFormula::And(a, b) => eval(a, assignment) && eval(b, assignment),
        PropFormula::Or(a, b) => eval(a, assignment) || eval(b, assignment),
        PropFormula::Implies(a, b) => !eval(a, assignment) || eval(b, assignment),
        PropFormula::Iff(a, b) => eval(a, assignment) == eval(b, assignment),
    }
}

fn brute_force_satisfiable(f: &PropFormula, num_vars: usize) -> bool {
    (0..(1u32 << num_vars)).any(|mask| {
        let assignment: Vec<bool> = (0..num_vars).map(|i| mask & (1 << i) != 0).collect();
        eval(f, &assignment)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CDCL core + Tseitin conversion agree with a brute-force truth table
    /// on arbitrary propositional formulas.
    #[test]
    fn propositional_solving_matches_truth_table(f in prop_formula(4)) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = (0..4).map(|i| tm.var(&format!("p{}", i), Sort::Bool)).collect();
        let t = encode(&mut tm, &vars, &f);
        let mut solver = Solver::new();
        let expected = if brute_force_satisfiable(&f, 4) {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        prop_assert_eq!(solver.check(&mut tm, &[t]), expected);
    }

    /// Validity of a formula and unsatisfiability of its negation coincide.
    #[test]
    fn check_valid_is_dual_to_check(f in prop_formula(3)) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = (0..3).map(|i| tm.var(&format!("p{}", i), Sort::Bool)).collect();
        let t = encode(&mut tm, &vars, &f);
        let valid = (0..(1u32 << 3)).all(|mask| {
            let assignment: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            eval(&f, &assignment)
        });
        let mut solver = Solver::new();
        let got = solver.check_valid(&mut tm, t);
        prop_assert_eq!(got == SatResult::Sat, valid);
    }
}

// ---------------------------------------------------------------------------
// Linear integer arithmetic with planted solutions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Constraint sets generated from a planted integer assignment are
    /// reported satisfiable; adding a bound that contradicts the planted value
    /// of some variable by construction is reported unsatisfiable when the
    /// chain of constraints pins that variable exactly.
    #[test]
    fn planted_linear_systems_are_sat(values in proptest::collection::vec(-20i64..20, 2..5)) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = (0..values.len())
            .map(|i| tm.var(&format!("v{}", i), Sort::Int))
            .collect();
        // Assert v_i = value_i via two inequalities, plus all pairwise sums.
        let mut assertions = Vec::new();
        for (v, &val) in vars.iter().zip(values.iter()) {
            let c = tm.int(val as i128);
            let le = tm.le(*v, c);
            let ge = tm.ge(*v, c);
            assertions.push(le);
            assertions.push(ge);
        }
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                let sum = tm.add(vars[i], vars[j]);
                let c = tm.int((values[i] + values[j]) as i128);
                let eq = tm.eq(sum, c);
                assertions.push(eq);
            }
        }
        let mut solver = Solver::new();
        prop_assert_eq!(solver.check(&mut tm, &assertions), SatResult::Sat);

        // Now contradict the first variable.
        let wrong = tm.int((values[0] + 1) as i128);
        let bad = tm.eq(vars[0], wrong);
        assertions.push(bad);
        let mut solver2 = Solver::new();
        prop_assert_eq!(solver2.check(&mut tm, &assertions), SatResult::Unsat);
    }

    /// Transitivity chains x0 <= x1 <= ... <= xn together with xn < x0 are
    /// unsatisfiable regardless of length.
    #[test]
    fn le_chain_with_strict_back_edge_is_unsat(n in 2usize..8) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = (0..n).map(|i| tm.var(&format!("x{}", i), Sort::Int)).collect();
        let mut assertions = Vec::new();
        for w in vars.windows(2) {
            let le = tm.le(w[0], w[1]);
            assertions.push(le);
        }
        let lt = tm.lt(vars[n - 1], vars[0]);
        assertions.push(lt);
        let mut solver = Solver::new();
        prop_assert_eq!(solver.check(&mut tm, &assertions), SatResult::Unsat);
    }
}

// ---------------------------------------------------------------------------
// Equality / uninterpreted functions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioning variables into classes by index parity: equalities inside
    /// a class plus a disequality across classes is satisfiable; a disequality
    /// inside a class is not.
    #[test]
    fn euf_chains_respect_partitions(n in 3usize..9) {
        let mut tm = TermManager::new();
        let vars: Vec<TermId> = (0..n).map(|i| tm.var(&format!("l{}", i), Sort::Loc)).collect();
        let mut chain = Vec::new();
        // Chain all even-indexed variables together and all odd-indexed ones.
        for i in (2..n).step_by(2) {
            let e = tm.eq(vars[i - 2], vars[i]);
            chain.push(e);
        }
        for i in (3..n).step_by(2) {
            let e = tm.eq(vars[i - 2], vars[i]);
            chain.push(e);
        }
        // f(first even) != f(last even) is inconsistent with the chain.
        let last_even = ((n - 1) / 2) * 2;
        let f0 = tm.app("f", vec![vars[0]], Sort::Int);
        let f1 = tm.app("f", vec![vars[last_even]], Sort::Int);
        let ne = tm.neq(f0, f1);
        let mut bad = chain.clone();
        bad.push(ne);
        let mut solver = Solver::new();
        prop_assert_eq!(solver.check(&mut tm, &bad), SatResult::Unsat);

        // Across the two classes nothing is forced: f(even) != f(odd) is fine.
        if n > 1 {
            let fo = tm.app("f", vec![vars[1]], Sort::Int);
            let ne2 = tm.neq(f0, fo);
            let mut ok = chain;
            ok.push(ne2);
            let mut solver2 = Solver::new();
            prop_assert_eq!(solver2.check(&mut tm, &ok), SatResult::Sat);
        }
    }
}

// ---------------------------------------------------------------------------
// Arrays (heap maps): read-over-write against a reference model
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A random sequence of writes to distinct locations behaves like a
    /// HashMap: reading any written location yields the last value written to
    /// it, and claiming any other value is unsatisfiable.
    #[test]
    fn store_chains_match_reference_model(writes in proptest::collection::vec((0usize..5, -100i64..100), 1..10)) {
        let mut tm = TermManager::new();
        let arr_sort = Sort::array_of(Sort::Loc, Sort::Int);
        let locs: Vec<TermId> = (0..5).map(|i| tm.var(&format!("o{}", i), Sort::Loc)).collect();
        let distinct = tm.distinct(locs.clone());
        let mut map = tm.var("field", arr_sort);
        let mut reference: HashMap<usize, i64> = HashMap::new();
        for &(loc, val) in &writes {
            let v = tm.int(val as i128);
            map = tm.store(map, locs[loc], v);
            reference.insert(loc, val);
        }
        // Pick the location of the last write for the query.
        let (qloc, qval) = *writes.last().unwrap();
        let expected = reference[&qloc];
        let sel = tm.select(map, locs[qloc]);
        let good = tm.int(expected as i128);
        let eq_good = tm.eq(sel, good);
        let mut solver = Solver::new();
        prop_assert_eq!(
            solver.check(&mut tm, &[distinct, eq_good]),
            SatResult::Sat
        );
        let bad = tm.int((expected + 1) as i128);
        let eq_bad = tm.eq(sel, bad);
        let mut solver2 = Solver::new();
        prop_assert_eq!(
            solver2.check(&mut tm, &[distinct, eq_bad]),
            SatResult::Unsat,
            "write set {:?}, query {} = {}", writes, qloc, qval
        );
    }
}

// ---------------------------------------------------------------------------
// Sets: algebraic identities are valid for arbitrary operand structure
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum SetExpr {
    Var(usize),
    Union(Box<SetExpr>, Box<SetExpr>),
    Inter(Box<SetExpr>, Box<SetExpr>),
    Diff(Box<SetExpr>, Box<SetExpr>),
}

fn set_expr(num_vars: usize) -> impl Strategy<Value = SetExpr> {
    let leaf = (0..num_vars).prop_map(SetExpr::Var);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SetExpr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SetExpr::Inter(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| SetExpr::Diff(Box::new(a), Box::new(b))),
        ]
    })
}

fn encode_set(tm: &mut TermManager, vars: &[TermId], e: &SetExpr) -> TermId {
    match e {
        SetExpr::Var(i) => vars[*i],
        SetExpr::Union(a, b) => {
            let (ea, eb) = (encode_set(tm, vars, a), encode_set(tm, vars, b));
            tm.union(ea, eb)
        }
        SetExpr::Inter(a, b) => {
            let (ea, eb) = (encode_set(tm, vars, a), encode_set(tm, vars, b));
            tm.inter(ea, eb)
        }
        SetExpr::Diff(a, b) => {
            let (ea, eb) = (encode_set(tm, vars, a), encode_set(tm, vars, b));
            tm.diff(ea, eb)
        }
    }
}

/// Evaluates a set expression over concrete bit-set valuations of the vars.
fn eval_set(e: &SetExpr, vals: &[u8]) -> u8 {
    match e {
        SetExpr::Var(i) => vals[*i],
        SetExpr::Union(a, b) => eval_set(a, vals) | eval_set(b, vals),
        SetExpr::Inter(a, b) => eval_set(a, vals) & eval_set(b, vals),
        SetExpr::Diff(a, b) => eval_set(a, vals) & !eval_set(b, vals),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two random set expressions are either equivalent over all small
    /// valuations (then their equality is valid) or a concrete valuation
    /// separates them (then the equality is falsifiable). The solver must
    /// agree with the brute-force verdict.
    #[test]
    fn set_equalities_match_bitset_semantics(a in set_expr(3), b in set_expr(3)) {
        // Brute force over subsets of a 3-element universe.
        let equivalent = (0..(1u16 << 9)).all(|mask| {
            let vals = [
                (mask & 0b111) as u8,
                ((mask >> 3) & 0b111) as u8,
                ((mask >> 6) & 0b111) as u8,
            ];
            eval_set(&a, &vals) == eval_set(&b, &vals)
        });
        let mut tm = TermManager::new();
        let set_sort = Sort::set_of(Sort::Loc);
        let vars: Vec<TermId> = (0..3).map(|i| tm.var(&format!("S{}", i), set_sort.clone())).collect();
        let (ea, eb) = (encode_set(&mut tm, &vars, &a), encode_set(&mut tm, &vars, &b));
        let eq = tm.eq(ea, eb);
        let mut solver = Solver::new();
        let verdict = solver.check_valid(&mut tm, eq);
        prop_assert_eq!(verdict == SatResult::Sat, equivalent, "a = {:?}, b = {:?}", a, b);
    }
}
