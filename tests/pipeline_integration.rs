//! Integration tests spanning the whole stack: IVL parsing → intrinsic
//! definition + FWYB expansion (`ids-core`) → VC generation (`ids-vcgen`) →
//! SMT solving (`ids-smt`), driven through the umbrella crate exactly as a
//! downstream user would.

use intrinsic_verify::core::ids::IntrinsicDefinition;
use intrinsic_verify::core::pipeline::{verify_method, PipelineConfig};
use intrinsic_verify::core::{fwyb, ghost, impact, wellbehaved};
use intrinsic_verify::smt::{SatResult, Solver, Sort, TermManager};
use intrinsic_verify::vcgen::{Encoding, VcGen};

fn two_field_list() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "it-list",
        r#"
        field next: Loc;
        field key: Int;
        field ghost prev: Loc;
        field ghost length: Int;
        "#,
        "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && x.length >= 1",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("key", &["x"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
        ],
    )
    .unwrap()
}

const PUSH: &str = r#"
procedure push(x: Loc, k: Int) returns (r: Loc)
  requires Br == {} && x != nil && x.prev == nil;
  ensures Br == {} && r != nil && r.prev == nil;
  ensures r.length == old(x.length) + 1;
  modifies {x};
{
  InferLCOutsideBr(x);
  var z: Loc;
  NewObj(z);
  Mut(z, key, k);
  Mut(z, next, x);
  Mut(z, prev, nil);
  Mut(z, length, x.length + 1);
  Mut(x, prev, z);
  AssertLCAndRemove(z);
  AssertLCAndRemove(x);
  r := z;
}
"#;

#[test]
fn full_pipeline_verifies_push() {
    let report = verify_method(&two_field_list(), PUSH, "push", PipelineConfig::default()).unwrap();
    assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    assert!(report.num_vcs >= 5);
    assert!(report.wellbehaved_violations.is_empty());
    assert!(report.ghost_violations.is_empty());
}

#[test]
fn pipeline_rejects_wrong_functional_spec() {
    let wrong = PUSH.replace("old(x.length) + 1", "old(x.length) + 2");
    let report =
        verify_method(&two_field_list(), &wrong, "push", PipelineConfig::default()).unwrap();
    assert!(!report.outcome.is_verified());
}

#[test]
fn quantified_encoding_is_supported_but_distinct() {
    let ids = two_field_list();
    let merged = intrinsic_verify::core::pipeline::load_methods(&ids, PUSH).unwrap();
    let expanded = fwyb::expand_program(&ids, &merged).unwrap();
    let mut tm = TermManager::new();
    let dec_vcs = VcGen::new(&expanded, Encoding::Decidable)
        .vcs_for(&mut tm, "push")
        .unwrap();
    let formulas: Vec<_> = dec_vcs.iter().map(|v| v.formula).collect();
    let profile = intrinsic_verify::vcgen::theory_profile(&tm, &formulas);
    assert!(profile.is_decidable_fragment());
    assert!(profile.sets && profile.arrays && profile.arithmetic);
}

#[test]
fn impact_sets_checked_across_crates() {
    let results = impact::check_impact_sets(&two_field_list(), Encoding::Decidable);
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|r| r.is_correct()));
}

#[test]
fn discipline_checks_catch_rule_breaking() {
    let ids = two_field_list();
    let raw = r#"
        procedure sneaky(x: Loc, y: Loc)
          requires Br == {};
          ensures Br == {};
        {
          x.next := y;
          assume x.length == 1;
        }
    "#;
    let merged = intrinsic_verify::core::pipeline::load_methods(&ids, raw).unwrap();
    let violations = wellbehaved::check_program(&merged);
    assert_eq!(violations.len(), 2);
}

#[test]
fn projection_yields_macro_free_user_code() {
    let ids = two_field_list();
    let merged = intrinsic_verify::core::pipeline::load_methods(&ids, PUSH).unwrap();
    let user = ghost::project(&merged);
    let printed = intrinsic_verify::ivl::program_to_string(&user);
    assert!(printed.contains("z.next := x"));
    assert!(!printed.contains("length"));
    assert!(!printed.contains("Br"));
    assert!(!printed.contains("assert"));
}

#[test]
fn smt_backend_is_usable_directly() {
    // The decidable backend is a public, reusable component: EUF + arithmetic
    // + sets + arrays in one query.
    let mut tm = TermManager::new();
    let set = Sort::set_of(Sort::Loc);
    let s = tm.var("S", set);
    let x = tm.var("x", Sort::Loc);
    let y = tm.var("y", Sort::Loc);
    let len = tm.var("len", Sort::array_of(Sort::Loc, Sort::Int));
    let in_s = tm.member(x, s);
    let eq = tm.eq(x, y);
    let not_in = {
        let m = tm.member(y, s);
        tm.not(m)
    };
    let mut solver = Solver::new();
    assert_eq!(solver.check(&mut tm, &[in_s, eq, not_in]), SatResult::Unsat);

    let lx = tm.select(len, x);
    let one = tm.int(1);
    let upd = tm.store(len, x, one);
    let sel = tm.select(upd, x);
    let two = tm.int(2);
    let bad = tm.eq(sel, two);
    let _ = lx;
    let mut solver2 = Solver::new();
    assert_eq!(solver2.check(&mut tm, &[bad]), SatResult::Unsat);
}
