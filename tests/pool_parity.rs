//! Property test: the three solver pool modes are observationally identical.
//!
//! On random subsets (and orders) of a structure's methods — including
//! methods refuted at different VCs, so early-stop interleavings are
//! exercised — `--pool-mode structure`, `--pool-mode method` and
//! `--pool-mode none` must produce byte-identical reports: outcome kind,
//! failing-VC description and VC counts. On subsets without refutations the
//! number of discharged SMT queries must also be identical (each deduplicated
//! VC is solved exactly once in every mode); with refutations the counts may
//! differ only through cancellation timing, never the reports.

use intrinsic_verify::core::IntrinsicDefinition;
use intrinsic_verify::driver::{verify_selections, DriverConfig, PoolMode, Selection};
use intrinsic_verify::smt::SolverProfile;
use proptest::prelude::*;

fn list_ids() -> IntrinsicDefinition {
    IntrinsicDefinition::parse(
        "acyclic-list",
        r#"
        field next: Loc;
        field ghost prev: Loc;
        field ghost length: Int;
        "#,
        "(x.next != nil ==> x.next.prev == x && x.length == x.next.length + 1) \
         && (x.prev != nil ==> x.prev.next == x) \
         && (x.next == nil ==> x.length == 1) \
         && (x.length >= 1)",
        "y",
        "y.prev == nil",
        &[
            ("next", &["x", "old(x.next)"]),
            ("prev", &["x", "old(x.prev)"]),
            ("length", &["x", "x.prev"]),
        ],
    )
    .unwrap()
}

/// Four methods with distinct cost/verdict profiles: a multi-VC verifying
/// method, a cheap verifying method, a method refuted at its first VC, and a
/// method refuted mid-way (its trailing VCs are early-stopped).
const METHODS_SRC: &str = r#"
    procedure insert_front(x: Loc) returns (r: Loc)
      requires Br == {} && x != nil && x.prev == nil;
      ensures Br == {} && r != nil && r.prev == nil;
      modifies {};
    {
      InferLCOutsideBr(x);
      var z: Loc;
      NewObj(z);
      Mut(z, next, x);
      Mut(z, length, x.length + 1);
      Mut(z, prev, nil);
      Mut(x, prev, z);
      AssertLCAndRemove(z);
      AssertLCAndRemove(x);
      r := z;
    }
    procedure touch(x: Loc)
      requires Br == {} && x != nil;
      ensures Br == {};
      modifies {};
    {
      InferLCOutsideBr(x);
      AssertLCAndRemove(x);
    }
    procedure detach_bad(x: Loc)
      requires Br == {} && x != nil;
      ensures Br == {};
      modifies {};
    {
      Mut(x, next, nil);
    }
    procedure forgets_length(x: Loc) returns (r: Loc)
      requires Br == {} && x != nil && x.prev == nil;
      ensures Br == {} && r != nil;
      modifies {};
    {
      InferLCOutsideBr(x);
      var z: Loc;
      NewObj(z);
      Mut(z, next, x);
      Mut(z, prev, nil);
      Mut(x, prev, z);
      AssertLCAndRemove(z);
      AssertLCAndRemove(x);
      r := z;
    }
"#;

const METHOD_NAMES: [&str; 4] = ["insert_front", "touch", "detach_bad", "forgets_length"];
const REFUTED: [&str; 2] = ["detach_bad", "forgets_length"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn pool_modes_agree_on_random_method_subsets(
        mask in 1usize..16,
        reverse in 0usize..2,
        jobs in 1usize..3,
        profile_idx in 0usize..2,
    ) {
        let profile = if profile_idx == 0 {
            SolverProfile::Default
        } else {
            SolverProfile::Legacy
        };
        let mut methods: Vec<String> = METHOD_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, m)| m.to_string())
            .collect();
        if reverse == 1 {
            methods.reverse();
        }
        let ids = list_ids();
        let selection = Selection {
            name: "acyclic-list",
            definition: &ids,
            methods_src: METHODS_SRC,
            methods: methods.clone(),
        };
        let run = |mode: PoolMode| {
            verify_selections(
                std::slice::from_ref(&selection),
                &DriverConfig {
                    jobs,
                    pool_mode: mode,
                    cache_path: None,
                    solver_profile: profile,
                    ..DriverConfig::default()
                },
            )
        };
        let structure = run(PoolMode::Structure);
        let method = run(PoolMode::Method);
        let fresh = run(PoolMode::None);

        for (label, batch) in [("structure", &structure), ("method", &method), ("none", &fresh)] {
            prop_assert!(batch.errors.is_empty(), "{}: {:?}", label, batch.errors);
            prop_assert_eq!(batch.reports.len(), methods.len(), "{}", label);
            // Accounting invariant: every VC is cached, solved or skipped.
            prop_assert_eq!(
                batch.stats.cache_hits + batch.stats.smt_queries + batch.stats.skipped_vcs,
                batch.stats.vcs,
                "{}: {:?}",
                label,
                batch.stats
            );
        }
        for (label, other) in [("method", &method), ("none", &fresh)] {
            for (a, b) in structure.reports.iter().zip(&other.reports) {
                prop_assert_eq!(&a.method, &b.method);
                prop_assert_eq!(
                    &a.outcome,
                    &b.outcome,
                    "methods {:?} jobs {}: {} diverged under pool mode {}",
                    &methods,
                    jobs,
                    &a.method,
                    label
                );
                prop_assert_eq!(a.num_vcs, b.num_vcs);
            }
            prop_assert_eq!(structure.stats.vcs, other.stats.vcs);
        }
        for (name, report) in methods.iter().zip(&structure.reports) {
            prop_assert_eq!(
                report.outcome.is_verified(),
                !REFUTED.contains(&name.as_str()),
                "{} verdict",
                name
            );
        }
        // Without refutations there is no cancellation: every mode solves
        // each deduplicated VC exactly once — query counts are identical.
        if !methods.iter().any(|m| REFUTED.contains(&m.as_str())) {
            for (label, other) in [("method", &method), ("none", &fresh)] {
                prop_assert_eq!(
                    structure.stats.smt_queries,
                    other.stats.smt_queries,
                    "query counts diverged under pool mode {} (methods {:?})",
                    label,
                    &methods
                );
                prop_assert_eq!(structure.stats.cache_hits, other.stats.cache_hits);
            }
        }
    }
}

// Slice parity: re-verification with `--slice-hyps` (cached unsat cores
// replayed as hypothesis-slice hints) must be observationally identical to
// `--no-slice-hyps` — same outcomes, per-VC verdicts, keys and counts — in
// every pool mode and under both profiles. Slicing is a performance hint
// with a sound fallback, never a semantics change.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn slice_on_and_off_produce_identical_reports(
        mask in 1usize..16,
        profile_idx in 0usize..2,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);

        let profile = if profile_idx == 0 {
            SolverProfile::Default
        } else {
            SolverProfile::Legacy
        };
        let methods: Vec<String> = METHOD_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, m)| m.to_string())
            .collect();
        let ids = list_ids();
        let selection = Selection {
            name: "acyclic-list",
            definition: &ids,
            methods_src: METHODS_SRC,
            methods: methods.clone(),
        };
        let cache = std::env::temp_dir().join(format!(
            "ids-slice-parity-{}-{}.cache",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&cache);

        for mode in [PoolMode::Structure, PoolMode::Method, PoolMode::None] {
            let _ = std::fs::remove_file(&cache);
            let run = |recheck: bool, slice_hyps: bool| {
                verify_selections(
                    std::slice::from_ref(&selection),
                    &DriverConfig {
                        jobs: 1,
                        pool_mode: mode,
                        cache_path: Some(cache.clone()),
                        solver_profile: profile,
                        recheck,
                        slice_hyps,
                        ..DriverConfig::default()
                    },
                )
            };
            // Cold run populates the cache with verdicts and unsat cores.
            let cold = run(false, true);
            prop_assert!(cold.errors.is_empty(), "{:?}: {:?}", mode, cold.errors);
            // Warm re-verification, with and without core-driven slicing.
            let sliced = run(true, true);
            let full = run(true, false);
            for (label, batch) in [("sliced", &sliced), ("full", &full)] {
                prop_assert!(batch.errors.is_empty(), "{:?}/{}", mode, label);
                prop_assert!(
                    batch.stats.smt_queries > 0,
                    "{:?}/{}: recheck must re-solve, not answer from cache",
                    mode,
                    label
                );
            }
            prop_assert_eq!(
                full.stats.solver.slice_hits + full.stats.solver.slice_fallbacks,
                0,
                "{:?}: --no-slice-hyps must never consult hints",
                mode
            );
            if mode == PoolMode::None {
                // The fresh-solver path checks one monolithic formula per VC;
                // there is nothing to slice.
                prop_assert_eq!(
                    sliced.stats.solver.slice_hits + sliced.stats.solver.slice_fallbacks,
                    0,
                    "fresh path must not slice"
                );
            } else if methods.iter().any(|m| !REFUTED.contains(&m.as_str())) {
                // At least one verified method means cached cores exist, so
                // the sliced recheck must actually consume hints.
                prop_assert!(
                    sliced.stats.solver.slice_hits + sliced.stats.solver.slice_fallbacks > 0,
                    "{:?}: no hint was ever consumed (methods {:?})",
                    mode,
                    &methods
                );
            }
            for (pair, other) in [("cold", &cold), ("full", &full)] {
                prop_assert_eq!(sliced.reports.len(), other.reports.len());
                for (a, b) in sliced.reports.iter().zip(&other.reports) {
                    prop_assert_eq!(&a.method, &b.method);
                    prop_assert_eq!(
                        &a.outcome,
                        &b.outcome,
                        "{:?}: {} diverged between sliced and {} (methods {:?})",
                        mode,
                        &a.method,
                        pair,
                        &methods
                    );
                    prop_assert_eq!(a.num_vcs, b.num_vcs);
                    prop_assert_eq!(a.vc_reports.len(), b.vc_reports.len());
                    for (va, vb) in a.vc_reports.iter().zip(&b.vc_reports) {
                        prop_assert_eq!(va.vc_key, vb.vc_key);
                        prop_assert_eq!(&va.verdict, &vb.verdict);
                        prop_assert_eq!(&va.description, &vb.description);
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&cache);
    }
}

/// Cross-profile parity: `--solver-profile default` and `legacy` must
/// produce byte-identical reports (outcome kind, failing-VC description,
/// VC/cache/query counts) in every pool mode, and byte-identical VC cache
/// keys — a profile change must never invalidate or split the cache.
#[test]
fn solver_profiles_agree_and_share_cache_keys() {
    use intrinsic_verify::core::pipeline::{load_methods, prepare_method_in, PipelineConfig};

    let ids = list_ids();
    let methods: Vec<String> = METHOD_NAMES.iter().map(|m| m.to_string()).collect();

    // Cache keys per (method, vc) under both profiles.
    let merged = load_methods(&ids, METHODS_SRC).unwrap();
    for name in &methods {
        let keys: Vec<Vec<u128>> = [SolverProfile::Default, SolverProfile::Legacy]
            .iter()
            .map(|&profile| {
                let task = prepare_method_in(
                    &ids,
                    &merged,
                    name,
                    PipelineConfig {
                        profile,
                        ..PipelineConfig::default()
                    },
                )
                .unwrap();
                (0..task.num_vcs()).map(|vi| task.vc_key(vi)).collect()
            })
            .collect();
        assert_eq!(
            keys[0], keys[1],
            "{}: cache keys depend on the profile",
            name
        );
    }

    // Full-batch reports per (pool mode, profile).
    let selection = Selection {
        name: "acyclic-list",
        definition: &ids,
        methods_src: METHODS_SRC,
        methods,
    };
    for mode in [PoolMode::Structure, PoolMode::Method, PoolMode::None] {
        let run = |profile: SolverProfile| {
            verify_selections(
                std::slice::from_ref(&selection),
                &DriverConfig {
                    jobs: 1,
                    pool_mode: mode,
                    cache_path: None,
                    solver_profile: profile,
                    ..DriverConfig::default()
                },
            )
        };
        let default = run(SolverProfile::Default);
        let legacy = run(SolverProfile::Legacy);
        assert!(default.errors.is_empty() && legacy.errors.is_empty());
        assert_eq!(default.reports.len(), legacy.reports.len());
        for (a, b) in default.reports.iter().zip(&legacy.reports) {
            assert_eq!(a.method, b.method);
            assert_eq!(
                a.outcome, b.outcome,
                "{:?}: {} diverged across solver profiles",
                mode, a.method
            );
            assert_eq!(a.num_vcs, b.num_vcs);
            assert_eq!(a.cached_vcs, b.cached_vcs);
        }
        assert_eq!(default.stats.vcs, legacy.stats.vcs);
        assert_eq!(default.stats.smt_queries, legacy.stats.smt_queries);
        assert_eq!(default.stats.cache_hits, legacy.stats.cache_hits);
        assert_eq!(default.stats.skipped_vcs, legacy.stats.skipped_vcs);
    }
}

/// Observability parity: arming tracing, a heartbeat observer AND the
/// metrics histograms must not change a single report field — verdicts,
/// per-VC rows (including the stable `vc_key`) and every driver counter are
/// identical with the observer on and off, in every pool mode and under both
/// solver profiles. Histograms are the one intentional difference: empty
/// when disarmed, populated when armed — they are normalized out of the
/// identity comparison and pinned separately. (Verdict parity is what
/// licenses leaving the instrumentation compiled into release builds.)
#[test]
fn observer_on_and_off_produce_identical_reports() {
    use intrinsic_verify::obs;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Counting(AtomicU64);
    impl obs::RunObserver for Counting {
        fn heartbeat(&self, _hb: &obs::Heartbeat) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    let ids = list_ids();
    let methods: Vec<String> = METHOD_NAMES.iter().map(|m| m.to_string()).collect();
    let selection = Selection {
        name: "acyclic-list",
        definition: &ids,
        methods_src: METHODS_SRC,
        methods,
    };
    // jobs: 1 — inline execution makes skip/cancellation counts exact, so
    // the comparison below can demand equality on every field.
    let run = |mode: PoolMode, profile: SolverProfile| {
        verify_selections(
            std::slice::from_ref(&selection),
            &DriverConfig {
                jobs: 1,
                pool_mode: mode,
                cache_path: None,
                solver_profile: profile,
                ..DriverConfig::default()
            },
        )
    };

    for mode in [PoolMode::Structure, PoolMode::Method, PoolMode::None] {
        for profile in [SolverProfile::Default, SolverProfile::Legacy] {
            let off = run(mode, profile);

            let counter = Arc::new(Counting(AtomicU64::new(0)));
            obs::trace_start();
            obs::set_heartbeat_conflicts(1);
            obs::set_observer(Some(counter.clone()));
            obs::set_metrics(true);
            let on = run(mode, profile);
            obs::set_metrics(false);
            obs::set_observer(None);
            obs::set_heartbeat_conflicts(0);
            let lanes = obs::trace_stop();

            let label = format!("{:?}/{:?}", mode, profile);
            assert!(
                counter.0.load(Ordering::Relaxed) > 0,
                "{}: observer never fired",
                label
            );
            assert!(
                lanes.iter().map(|l| l.events.len()).sum::<usize>() > 0,
                "{}: tracing captured no events",
                label
            );

            assert!(off.errors.is_empty() && on.errors.is_empty(), "{}", label);
            assert_eq!(off.reports.len(), on.reports.len(), "{}", label);
            for (a, b) in off.reports.iter().zip(&on.reports) {
                assert_eq!(a.method, b.method, "{}", label);
                assert_eq!(
                    a.outcome, b.outcome,
                    "{}: {} diverged under observation",
                    label, a.method
                );
                assert_eq!(a.num_vcs, b.num_vcs, "{}", label);
                assert_eq!(a.cached_vcs, b.cached_vcs, "{}", label);
                assert_eq!(a.vc_reports.len(), b.vc_reports.len(), "{}", label);
                for (va, vb) in a.vc_reports.iter().zip(&b.vc_reports) {
                    assert_eq!(va.vc_index, vb.vc_index, "{}", label);
                    assert_eq!(va.vc_key, vb.vc_key, "{}", label);
                    assert_eq!(va.description, vb.description, "{}", label);
                    assert_eq!(va.verdict, vb.verdict, "{}", label);
                    assert_eq!(va.cached, vb.cached, "{}", label);
                    // Histograms are normalized out of the identity check:
                    // the disarmed run must have none at all.
                    assert!(
                        va.hists.is_empty(),
                        "{}: metrics were disarmed yet {} vc {} recorded histograms",
                        label,
                        a.method,
                        va.vc_index
                    );
                }
            }
            // ...and the armed run must have recorded solver dynamics for at
            // least one solved VC (trivial VCs may finish without a round).
            assert!(
                on.reports
                    .iter()
                    .flat_map(|r| &r.vc_reports)
                    .any(|vc| !vc.hists.is_empty()),
                "{}: metrics were armed yet no VC recorded a histogram",
                label
            );
            assert_eq!(off.stats.vcs, on.stats.vcs, "{}", label);
            assert_eq!(off.stats.smt_queries, on.stats.smt_queries, "{}", label);
            assert_eq!(off.stats.cache_hits, on.stats.cache_hits, "{}", label);
            assert_eq!(off.stats.skipped_vcs, on.stats.skipped_vcs, "{}", label);
            assert_eq!(off.stats.cancellations, on.stats.cancellations, "{}", label);
        }
    }
}
